// StorageNode: one storage server's actor. Under the sharded event
// engine the node's entire event stream (deliveries, disk completions,
// background timers) runs on the shard the cluster assigned it —
// per-AZ, or its own shard under ShardGranularity::kPerNode. Every
// peer interaction here (gossip, hydration, scrub repair fetches) goes
// through sim::UnaryCall / Network::Send, never a direct call into
// another node, so per-node residency introduces no cross-shard data
// races: cross-node traffic crosses shards only as network messages,
// each bounded below by its link class's hop floor and hence by the
// pairwise lookahead matrix entry for the shard pair.

#include "src/storage/storage_node.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace aurora::storage {

StorageNode::StorageNode(sim::Simulator* sim, sim::Network* network,
                         NodeId id, AzId az, ObjectStore* object_store,
                         StorageNodeOptions options)
    : sim_(sim),
      network_(network),
      id_(id),
      az_(az),
      object_store_(object_store),
      options_(options),
      disk_(sim, options.disk),
      rng_(sim->rng().Fork()) {
  network_->RegisterNode(id_, az_, this);
}

SegmentStore* StorageNode::AddSegment(quorum::SegmentInfo info,
                                      ProtectionGroupId pg,
                                      quorum::PgConfig config,
                                      VolumeEpoch volume_epoch,
                                      bool hydrated) {
  auto store = std::make_unique<SegmentStore>(info, pg, std::move(config),
                                              volume_epoch, hydrated);
  SegmentStore* raw = store.get();
  segments_[info.id] = std::move(store);
  tenant_index_[{info.volume, pg, info.id}] = raw;
  return raw;
}

SegmentStore* StorageNode::FindSegment(SegmentId segment) {
  auto it = segments_.find(segment);
  return it == segments_.end() ? nullptr : it->second.get();
}

SegmentStore* StorageNode::FindSegment(VolumeId volume, ProtectionGroupId pg,
                                       SegmentId segment) {
  auto it = tenant_index_.find({volume, pg, segment});
  return it == tenant_index_.end() ? nullptr : it->second;
}

void StorageNode::ForEachTenantSegment(
    VolumeId volume, const std::function<void(SegmentStore*)>& fn) {
  for (auto it = tenant_index_.lower_bound({volume, 0, 0});
       it != tenant_index_.end() && std::get<0>(it->first) == volume; ++it) {
    fn(it->second);
  }
}

TenantStats StorageNode::tenant_stats(VolumeId volume) const {
  auto it = tenants_.find(volume);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

std::vector<VolumeId> StorageNode::TenantIds() const {
  std::vector<VolumeId> out;
  for (const auto& [volume, state] : tenants_) out.push_back(volume);
  return out;
}

void StorageNode::DropSegment(SegmentId segment) {
  auto it = segments_.find(segment);
  if (it == segments_.end()) return;
  tenant_index_.erase(
      {it->second->volume(), it->second->pg(), it->second->id()});
  segments_.erase(it);
}

void StorageNode::HandleWrite(const WriteRequest& request,
                              sim::ReplyFn<WriteAck> reply) {
  SegmentStore* segment = FindSegment(request.segment);
  if (segment == nullptr) {
    reply(WriteAck{request.segment, Status::NotFound("no such segment"),
                   kInvalidLsn});
    return;
  }
  if (Status st = segment->CheckEpochs(request.epochs); !st.ok()) {
    reply(WriteAck{request.segment, std::move(st), segment->scl(),
                   segment->hydrated()});
    return;
  }
  if (options_.fair_scheduler) {
    // Multi-tenant QoS: the request joins its tenant's queue and the DRR
    // scheduler decides when it reaches the disk (DESIGN.md §11).
    EnqueueTenantWrite(segment, request, std::move(reply));
    return;
  }
  // Durable append to the update queue, then acknowledge with the SCL
  // reached after sort/group (§2.1 activities 1-3). The disk write is the
  // only synchronous cost on the ack path.
  uint64_t bytes = 0;
  for (const auto& r : request.records) bytes += r.SerializedSize();
  disk_.SubmitWrite(bytes, [this, request, reply = std::move(reply),
                            segment]() mutable {
    if (!IsUp()) return;  // crashed mid-I/O: write lost, never acked
    Status st = segment->Append(request.records);
    reply(WriteAck{request.segment, std::move(st), segment->scl(),
                   segment->hydrated()});
  });
}

StorageNode::TenantState& StorageNode::TenantFor(VolumeId volume) {
  auto [it, fresh] = tenants_.try_emplace(volume);
  if (fresh) {
    // Handles are per (metric, tenant): the registry is keyed by full
    // name, so the dynamic `.<volume>` suffix makes one series per
    // tenant (DESIGN.md §5b lists these as `aurora.tenant.*.<volume>`).
    auto& reg = metrics::Registry::Global();
    const std::string suffix = std::to_string(volume);
    it->second.m_records = reg.GetCounter("aurora.tenant.records." + suffix);
    it->second.m_bytes = reg.GetCounter("aurora.tenant.bytes." + suffix);
    it->second.m_throttled =
        reg.GetCounter("aurora.tenant.throttled." + suffix);
    it->second.m_queue_depth =
        reg.GetGauge("aurora.tenant.queue_depth." + suffix);
    it->second.m_sched_wait =
        reg.GetHistogram("aurora.tenant.sched_wait_us." + suffix);
  }
  return it->second;
}

void StorageNode::EnqueueTenantWrite(SegmentStore* segment,
                                     const WriteRequest& request,
                                     sim::ReplyFn<WriteAck> reply) {
  TenantState& tenant = TenantFor(segment->volume());
  TenantWrite entry;
  entry.request = request;
  entry.reply = std::move(reply);
  entry.enqueued_at = sim_->Now();
  uint64_t cost = 0;
  for (const auto& r : request.records) cost += r.SerializedSize();
  entry.cost = std::max<uint64_t>(cost, 1);
  tenant.queue.push_back(std::move(entry));
  tenant.stats.records += request.records.size();
  tenant.stats.bytes += cost;
  tenant.stats.queue_depth = tenant.queue.size();
  AURORA_COUNT(tenant.m_records, request.records.size());
  AURORA_COUNT(tenant.m_bytes, cost);
  AURORA_GAUGE_SET(tenant.m_queue_depth,
                   static_cast<int64_t>(tenant.queue.size()));
  if (!drain_active_) {
    drain_active_ = true;
    DispatchNextTenantWrite();
  }
}

void StorageNode::DispatchNextTenantWrite() {
  // Deficit round robin (DESIGN.md §11). Each pass visits backlogged
  // tenants in ascending volume order starting at drr_cursor_. A tenant
  // whose head request fits its deficit is served (and keeps the turn
  // while credit lasts); one that cannot afford its head earns exactly
  // one quantum and yields. Starvation is impossible: every full cycle
  // adds a quantum to every backlogged tenant, so any head request
  // becomes affordable within ceil(cost / quantum) cycles, and queues
  // are FIFO within a tenant.
  while (true) {
    TenantState* pick = nullptr;
    VolumeId pick_volume = 0;
    auto it = tenants_.lower_bound(drr_cursor_);
    for (size_t hops = 0; hops <= tenants_.size(); ++hops) {
      if (it == tenants_.end()) it = tenants_.begin();
      if (it == tenants_.end()) break;  // no tenants at all
      if (!it->second.queue.empty()) {
        pick = &it->second;
        pick_volume = it->first;
        break;
      }
      ++it;
    }
    if (pick == nullptr) {
      drain_active_ = false;
      return;
    }
    TenantWrite& head = pick->queue.front();
    if (head.cost <= pick->deficit) {
      pick->deficit -= head.cost;
      TenantWrite entry = std::move(head);
      pick->queue.pop_front();
      pick->stats.queue_depth = pick->queue.size();
      pick->stats.dispatched++;
      // Classic DRR: an emptied queue forfeits residual credit, so idle
      // tenants cannot bank an unbounded burst.
      if (pick->queue.empty()) pick->deficit = 0;
      drr_cursor_ = pick_volume;
      AURORA_GAUGE_SET(pick->m_queue_depth,
                       static_cast<int64_t>(pick->queue.size()));
      AURORA_OBSERVE(pick->m_sched_wait, sim_->Now() - entry.enqueued_at);
      ServeTenantWrite(std::move(entry));
      return;
    }
    // Its turn came up short: earn one quantum, count the fair-share
    // deferral, pass the turn.
    pick->deficit += options_.fair_quantum_bytes;
    pick->stats.throttled++;
    AURORA_COUNT(pick->m_throttled, 1);
    drr_cursor_ = pick_volume + 1;
  }
}

void StorageNode::ServeTenantWrite(TenantWrite entry) {
  // Re-resolve: the segment may have been dropped (committed membership
  // change away from it) while the request sat in the tenant queue.
  SegmentStore* segment = FindSegment(entry.request.segment);
  if (segment == nullptr) {
    entry.reply(WriteAck{entry.request.segment,
                         Status::NotFound("no such segment"), kInvalidLsn});
    DispatchNextTenantWrite();
    return;
  }
  disk_.SubmitWrite(entry.cost, [this, request = entry.request,
                                 reply = std::move(entry.reply),
                                 segment]() mutable {
    if (!IsUp()) return;  // crashed mid-I/O: OnCrash cleared the queues
    Status st = segment->Append(request.records);
    reply(WriteAck{request.segment, std::move(st), segment->scl(),
                   segment->hydrated()});
    DispatchNextTenantWrite();
  });
}

void StorageNode::HandleReadPage(const ReadPageRequest& request,
                                 sim::ReplyFn<ReadPageResponse> reply) {
  SegmentStore* segment = FindSegment(request.segment);
  if (segment == nullptr) {
    reply(ReadPageResponse{Status::NotFound("no such segment"), {}});
    return;
  }
  if (Status st = segment->CheckEpochs(request.epochs); !st.ok()) {
    reply(ReadPageResponse{std::move(st), {}});
    return;
  }
  if (!segment->hydrated()) {
    // A mid-hydration segment has holes below its hydration target;
    // serving a page from it could silently miss committed versions, so
    // it must never count toward read-quorum completeness (§4.2). The
    // driver also filters such segments out of routing, but this check is
    // the authoritative one.
    reply(ReadPageResponse{Status::Unavailable("segment hydrating"), {}});
    return;
  }
  if (request.pgmrpl != kInvalidLsn) {
    segment->ObservePgmrpl(request.pgmrpl);
  }
  disk_.SubmitRead(4096, [this, request, reply = std::move(reply),
                          segment]() mutable {
    if (!IsUp()) return;
    auto page = segment->ReadPage(request.block, request.read_lsn);
    if (!page.ok()) {
      reply(ReadPageResponse{page.status(), {}});
      return;
    }
    reply(ReadPageResponse{Status::OK(), std::move(*page)});
  });
}

void StorageNode::HandleSegmentState(const SegmentStateRequest& request,
                                     sim::ReplyFn<SegmentStateResponse> reply) {
  SegmentStore* segment = FindSegment(request.segment);
  if (segment == nullptr) {
    reply(SegmentStateResponse{Status::NotFound("no such segment"),
                               request.segment, kInvalidLsn, false, false, 0,
                               0});
    return;
  }
  SegmentStateResponse response;
  response.status = Status::OK();
  response.segment = segment->id();
  response.scl = segment->scl();
  response.hydrated = segment->hydrated();
  response.is_full = segment->is_full();
  response.volume_epoch = segment->volume_epoch();
  response.membership_epoch = segment->config().epoch();
  response.truncations = segment->hot_log().truncations();
  response.gc_floor = segment->hot_log().gc_floor();
  reply(std::move(response));
}

void StorageNode::HandleTailRecords(const TailRecordsRequest& request,
                                    sim::ReplyFn<TailRecordsResponse> reply) {
  SegmentStore* segment = FindSegment(request.segment);
  if (segment == nullptr) {
    reply(TailRecordsResponse{Status::NotFound("no such segment"), {}});
    return;
  }
  TailRecordsResponse response;
  response.status = Status::OK();
  response.gc_floor = segment->hot_log().gc_floor();
  for (const auto& record :
       segment->hot_log().RecordsAbove(request.from_lsn, 1 << 20)) {
    response.records.push_back(
        TailRecordInfo{record.lsn, record.IsMtrComplete()});
  }
  reply(std::move(response));
}

void StorageNode::HandleGossip(const GossipRequest& request,
                               sim::ReplyFn<GossipResponse> reply) {
  SegmentStore* segment = FindSegment(request.to_segment);
  if (segment == nullptr) {
    reply(GossipResponse{Status::NotFound("no such segment"), {}});
    return;
  }
  GossipResponse response;
  response.status = Status::OK();
  response.records = segment->ChainAfter(request.scl, options_.gossip_batch);
  response.peer_scl = segment->scl();
  reply(std::move(response));
}

void StorageNode::HandleMembershipUpdate(
    const MembershipUpdateRequest& request,
    sim::ReplyFn<MembershipUpdateResponse> reply) {
  SegmentStore* segment = FindSegment(request.segment);
  if (segment == nullptr) {
    reply(MembershipUpdateResponse{Status::NotFound("no such segment"), 0});
    return;
  }
  Status st = segment->UpdateMembership(request);
  reply(MembershipUpdateResponse{std::move(st), segment->config().epoch()});
}

void StorageNode::HandleVolumeEpochUpdate(
    const VolumeEpochUpdateRequest& request,
    sim::ReplyFn<VolumeEpochUpdateResponse> reply) {
  SegmentStore* segment = FindSegment(request.segment);
  if (segment == nullptr) {
    reply(VolumeEpochUpdateResponse{Status::NotFound("no such segment"), 0,
                                    kInvalidLsn});
    return;
  }
  Status st = segment->UpdateVolumeEpoch(request);
  reply(VolumeEpochUpdateResponse{std::move(st), segment->volume_epoch(),
                                  segment->scl()});
}

void StorageNode::HandleHydration(const HydrationRequest& request,
                                  sim::ReplyFn<HydrationResponse> reply) {
  SegmentStore* segment = FindSegment(request.from_segment);
  if (segment == nullptr) {
    reply(HydrationResponse{Status::NotFound("no such segment"), {}, {}});
    return;
  }
  disk_.SubmitRead(64 * 1024, [reply = std::move(reply), segment, request,
                               this]() mutable {
    if (!IsUp()) return;
    reply(segment->BuildHydration(request));
  });
}

template <typename Fn>
void StorageNode::Every(SimDuration interval, Fn fn) {
  // Jittered period so nodes do not run stages in lockstep.
  const SimDuration delay =
      interval / 2 +
      static_cast<SimDuration>(rng_.NextBounded(
          static_cast<uint64_t>(std::max<SimDuration>(interval, 1))));
  sim_->Schedule(delay, [this, interval, fn]() {
    if (IsUp()) fn();
    Every(interval, fn);
  });
}

void StorageNode::StartBackground() {
  if (background_started_ || !options_.background_enabled) return;
  background_started_ = true;
  Every(options_.gossip_interval, [this]() { RunGossipOnce(); });
  Every(options_.coalesce_interval, [this]() { RunCoalesceOnce(); });
  Every(options_.backup_interval, [this]() { RunBackupOnce(); });
  Every(options_.gc_interval, [this]() { RunGcOnce(); });
  Every(options_.scrub_interval, [this]() { RunScrubOnce(); });
}

void StorageNode::RunGossipOnce() {
  for (auto& [id, segment] : segments_) {
    GossipSegment(segment.get());
  }
}

void StorageNode::GossipSegment(SegmentStore* segment) {
  if (AURORA_METRICS_ON()) {
    metrics::Registry::Global().GetCounter("storage.gossip_rounds")->Add(1);
  }
  // Pick a random peer from the current membership.
  const auto members = segment->config().AllMembers();
  std::vector<quorum::SegmentInfo> peers;
  for (const auto& m : members) {
    if (m.id != segment->id() && m.node != id_) peers.push_back(m);
  }
  if (peers.empty()) return;
  const auto& peer = peers[rng_.NextBounded(peers.size())];
  GossipRequest request{segment->id(), peer.id, segment->scl()};
  SegmentId local_id = segment->id();
  sim::UnaryCall<GossipResponse>(
      network_, id_, peer.node, request.SerializedSize(),
      [this, peer, request](sim::ReplyFn<GossipResponse> reply) {
        StorageNode* peer_node = resolver_ ? resolver_(peer.node) : nullptr;
        if (peer_node == nullptr) {
          reply(GossipResponse{Status::Unavailable("peer unresolved"), {}});
          return;
        }
        peer_node->HandleGossip(request, std::move(reply));
      },
      [](const GossipResponse& r) { return r.SerializedSize(); },
      [this, local_id](GossipResponse response) {
        if (!response.status.ok()) return;
        SegmentStore* local = FindSegment(local_id);
        if (local == nullptr) return;
        if (!response.records.empty()) {
          gossip_behind_rounds_.erase(local_id);
          (void)local->AbsorbGossip(response.records);
          return;
        }
        if (response.peer_scl == kInvalidLsn ||
            local->scl() >= response.peer_scl) {
          gossip_behind_rounds_.erase(local_id);
          return;
        }
        // The peer is ahead but returned nothing linkable: its hot log was
        // coalesced and GC'd below our SCL, so no peer can serve the chain
        // continuation. This happens to a hydrated segment that missed
        // writes (partition/crash) whose peers have since trimmed — e.g. a
        // minority-completed tail adopted by crash recovery. Two
        // consecutive behind-and-empty rounds escalate to the archive
        // tier, the same fallback hydration uses.
        if (++gossip_behind_rounds_[local_id] < 2 ||
            object_store_ == nullptr) {
          return;
        }
        gossip_behind_rounds_.erase(local_id);
        object_store_->Get(
            local->archive_key(), local->scl() + 1,
            std::numeric_limits<Lsn>::max(),
            [this, local_id](std::vector<log::RedoRecord> records) {
              SegmentStore* s = FindSegment(local_id);
              if (s != nullptr && !records.empty()) {
                (void)s->AbsorbGossip(records);
              }
            });
      });
}

void StorageNode::RunCoalesceOnce() {
  for (auto& [id, segment] : segments_) {
    segment->CoalesceStep(options_.coalesce_batch);
  }
}

void StorageNode::RunBackupOnce() {
  if (object_store_ == nullptr) return;
  for (auto& [id, segment] : segments_) {
    auto records = segment->PendingBackup(options_.backup_batch);
    if (records.empty()) continue;
    const SegmentId seg_id = id;
    object_store_->Put(segment->archive_key(), std::move(records),
                       [this, seg_id](Lsn max_lsn) {
                         SegmentStore* s = FindSegment(seg_id);
                         if (s != nullptr && max_lsn != kInvalidLsn) {
                           s->MarkBackedUp(max_lsn);
                         }
                       });
  }
}

void StorageNode::RunGcOnce() {
  for (auto& [id, segment] : segments_) {
    segment->GarbageCollect();
  }
}

void StorageNode::RunScrubOnce() {
  if (AURORA_METRICS_ON()) {
    metrics::Registry::Global().GetCounter("storage.scrub_runs")->Add(1);
  }
  for (auto& [id, segment] : segments_) {
    segment->Scrub();
  }
}

void StorageNode::StartHydrationPull(SegmentId local_segment) {
  SegmentStore* segment = FindSegment(local_segment);
  if (segment == nullptr || segment->hydrated()) return;
  const uint64_t token = ++hydration_tokens_[local_segment];
  // Watchdog: a pull whose donor died mid-transfer never responds; retry
  // if no newer pull has been started by then.
  sim_->Schedule(500 * kMillisecond, [this, local_segment, token]() {
    auto it = hydration_tokens_.find(local_segment);
    if (it == hydration_tokens_.end() || it->second != token) return;
    SegmentStore* s = FindSegment(local_segment);
    if (s != nullptr && !s->hydrated()) StartHydrationPull(local_segment);
  });
  // Choose a donor: prefer a reachable full peer when we need block state.
  const bool need_blocks = segment->is_full();
  const auto members = segment->config().AllMembers();
  std::vector<quorum::SegmentInfo> donors;
  for (const auto& m : members) {
    if (m.id == segment->id()) continue;
    if (need_blocks && !m.is_full) continue;
    if (!network_->IsUp(m.node)) continue;
    donors.push_back(m);
  }
  if (donors.empty()) {
    for (const auto& m : members) {
      if (m.id != segment->id() && network_->IsUp(m.node)) donors.push_back(m);
    }
  }
  if (donors.empty()) return;
  const auto& donor = donors[rng_.NextBounded(donors.size())];
  HydrationRequest request{donor.id, local_segment, segment->scl(),
                           need_blocks};
  sim::UnaryCall<HydrationResponse>(
      network_, id_, donor.node, request.SerializedSize(),
      [this, donor, request](sim::ReplyFn<HydrationResponse> reply) {
        StorageNode* donor_node = resolver_ ? resolver_(donor.node) : nullptr;
        if (donor_node == nullptr) {
          reply(HydrationResponse{Status::Unavailable("donor unresolved"),
                                  {}, {}});
          return;
        }
        donor_node->HandleHydration(request, std::move(reply));
      },
      [](const HydrationResponse& r) { return r.SerializedSize(); },
      [this, local_segment](HydrationResponse response) {
        SegmentStore* local = FindSegment(local_segment);
        if (local == nullptr) return;
        const Lsn scl_before = local->scl();
        if (response.status.ok()) {
          (void)local->AbsorbHydration(response);
        }
        if (local->hydrated()) return;
        // Progress means the chain actually advanced. A donor whose hot
        // log was garbage-collected below our position returns records we
        // cannot link; the archive must fill that prefix.
        if (local->scl() > scl_before) {
          StartHydrationPull(local_segment);
          return;
        }
        // Donor had nothing for us (evicted below its GC floor, or
        // unlucky donor choice): fall back to the archive, then retry.
        if (object_store_ != nullptr) {
          // Fetch to the end of the archive: recovery gaps (truncation
          // ranges) make LSNs non-contiguous, so a bounded window above
          // the local SCL can miss everything.
          object_store_->Get(
              local->archive_key(), local->scl() + 1,
              std::numeric_limits<Lsn>::max(),
              [this, local_segment](std::vector<log::RedoRecord> records) {
                SegmentStore* s = FindSegment(local_segment);
                if (s == nullptr) return;
                if (!records.empty()) (void)s->AbsorbGossip(records);
                if (!s->hydrated()) {
                  sim_->Schedule(10 * kMillisecond, [this, local_segment]() {
                    StartHydrationPull(local_segment);
                  });
                }
              });
        } else {
          sim_->Schedule(10 * kMillisecond, [this, local_segment]() {
            StartHydrationPull(local_segment);
          });
        }
      });
}

void StorageNode::OnCrash() {
  // Segment state is disk-durable; nothing volatile to clear. In-flight
  // disk completions and network deliveries are guarded by IsUp checks /
  // incarnation numbers. Queued tenant writes are volatile pre-ack state:
  // dropping them is indistinguishable from losing in-flight requests
  // (the driver re-sends), and the DRR chain re-arms on the next enqueue.
  for (auto& [volume, tenant] : tenants_) {
    tenant.queue.clear();
    tenant.deficit = 0;
    tenant.stats.queue_depth = 0;
    AURORA_GAUGE_SET(tenant.m_queue_depth, 0);
  }
  drain_active_ = false;
}

void StorageNode::OnRestart() {}

}  // namespace aurora::storage
