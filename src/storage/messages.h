// Request/response message types between database instances and storage
// nodes. These are plain structs; the simulated network accounts for their
// serialized size, which feeds the network-amplification experiment (C8).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/hot_log.h"
#include "src/log/record.h"
#include "src/quorum/membership.h"
#include "src/storage/page.h"

namespace aurora::storage {

/// Fixed per-message envelope overhead used for byte accounting.
inline constexpr uint64_t kMessageOverheadBytes = 64;

/// A batch of redo records addressed to one segment (§2.2 write path).
struct WriteRequest {
  SegmentId segment = kInvalidSegment;
  EpochVector epochs;
  std::vector<log::RedoRecord> records;

  uint64_t SerializedSize() const {
    uint64_t bytes = kMessageOverheadBytes;
    for (const auto& r : records) bytes += r.SerializedSize();
    return bytes;
  }
};

/// Acknowledgement of a write (§2.3): carries the segment's current SCL so
/// the instance can advance PGCL/VCL with local bookkeeping only.
struct WriteAck {
  SegmentId segment = kInvalidSegment;
  Status status;
  Lsn scl = kInvalidLsn;
  /// Whether the segment had finished hydrating when it acked. A
  /// mid-hydration replacement accepts and acks writes (they advance its
  /// SCL), but the driver must keep it out of read routing until this
  /// flips true (hydration is monotone per segment id).
  bool hydrated = true;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

/// Read of one materialized block version at or below `read_lsn` (§3.1).
/// `pgmrpl` piggybacks the instance's minimum read point so the node can
/// advance garbage collection (§3.4).
struct ReadPageRequest {
  SegmentId segment = kInvalidSegment;
  EpochVector epochs;
  BlockId block = kInvalidBlock;
  Lsn read_lsn = kInvalidLsn;
  Lsn pgmrpl = kInvalidLsn;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

struct ReadPageResponse {
  Status status;
  std::optional<Page> page;

  uint64_t SerializedSize() const {
    return kMessageOverheadBytes + (page ? page->SizeBytes() : 0);
  }
};

/// Segment state probe used at volume open / crash recovery (§2.4) and by
/// repair: reports SCL and whether the segment has finished hydrating.
/// Un-hydrated segments never count toward a read quorum.
struct SegmentStateRequest {
  SegmentId segment = kInvalidSegment;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

struct SegmentStateResponse {
  Status status;
  SegmentId segment = kInvalidSegment;
  Lsn scl = kInvalidLsn;
  bool hydrated = false;
  bool is_full = false;
  VolumeEpoch volume_epoch = 0;
  MembershipEpoch membership_epoch = 0;
  /// Truncation ranges this segment knows about (prior recoveries);
  /// recovery treats annulled LSNs as logically present.
  std::vector<log::TruncationRange> truncations;
  /// Records at or below this LSN were chain-complete when archived and
  /// evicted (GC); recovery counts [1, gc_floor] as present even though
  /// the hot log can no longer enumerate them.
  Lsn gc_floor = kInvalidLsn;

  uint64_t SerializedSize() const {
    return kMessageOverheadBytes + 16 * truncations.size();
  }
};

/// Fetches the (lsn, mtr-completeness, pg) shape of a segment's chain
/// above `from_lsn` — used by crash recovery to locate the ragged edge and
/// the last complete MTR without shipping payloads (§2.4).
struct TailRecordsRequest {
  SegmentId segment = kInvalidSegment;
  Lsn from_lsn = kInvalidLsn;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

struct TailRecordInfo {
  Lsn lsn = kInvalidLsn;
  bool mtr_complete = false;
};

struct TailRecordsResponse {
  Status status;
  std::vector<TailRecordInfo> records;
  /// Chain-complete prefix already archived and evicted AS OF THIS REPLY.
  /// Background GC may advance between a state probe and this fetch, so
  /// recovery must take the floor from the same response as the records
  /// or evicted LSNs would look like holes.
  Lsn gc_floor = kInvalidLsn;

  uint64_t SerializedSize() const {
    return kMessageOverheadBytes + 9 * records.size();
  }
};

/// Gossip (§2.3): a segment advertises its SCL; the peer replies with the
/// chain records the requester is missing.
struct GossipRequest {
  SegmentId from_segment = kInvalidSegment;
  SegmentId to_segment = kInvalidSegment;
  Lsn scl = kInvalidLsn;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

struct GossipResponse {
  Status status;
  std::vector<log::RedoRecord> records;
  /// The responder's SCL. An empty `records` with `peer_scl` above the
  /// requester's SCL means the peer is ahead but its hot log no longer
  /// holds the requester's chain continuation (coalesced and GC'd) — the
  /// requester must escalate to the archive tier to catch up.
  Lsn peer_scl = kInvalidLsn;

  uint64_t SerializedSize() const {
    uint64_t bytes = kMessageOverheadBytes;
    for (const auto& r : records) bytes += r.SerializedSize();
    return bytes;
  }
};

/// Installs a new membership config (epoch increment, §4.1). Requires the
/// caller to present the expected current epoch; stale requests bounce.
struct MembershipUpdateRequest {
  SegmentId segment = kInvalidSegment;
  MembershipEpoch expected_epoch = 0;
  quorum::PgConfig config;
  VolumeEpoch volume_epoch = 0;

  uint64_t SerializedSize() const { return kMessageOverheadBytes + 256; }
};

struct MembershipUpdateResponse {
  Status status;
  MembershipEpoch current_epoch = 0;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

/// Records a new volume epoch at the segment (crash recovery fencing,
/// §2.4) along with the recovery truncation range.
struct VolumeEpochUpdateRequest {
  SegmentId segment = kInvalidSegment;
  VolumeEpoch new_epoch = 0;
  std::optional<log::TruncationRange> truncation;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

struct VolumeEpochUpdateResponse {
  Status status;
  VolumeEpoch current_epoch = 0;
  Lsn scl = kInvalidLsn;

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

/// Bulk state transfer for hydrating a replacement segment (§4.2 repair).
struct HydrationRequest {
  SegmentId from_segment = kInvalidSegment;
  SegmentId to_segment = kInvalidSegment;
  Lsn have_scl = kInvalidLsn;
  bool need_blocks = false;  // full-segment repair also copies block state

  uint64_t SerializedSize() const { return kMessageOverheadBytes; }
};

struct HydrationResponse {
  Status status;
  std::vector<log::RedoRecord> records;
  /// All retained materialized versions (full repair); versions of one
  /// block are distinguished by page_lsn.
  std::vector<Page> pages;
  /// The donor's truncation history: a fresh segment must install these
  /// BEFORE absorbing records (from the donor or the archive), or it
  /// would resurrect annulled timelines.
  std::vector<log::TruncationRange> truncations;

  uint64_t SerializedSize() const {
    uint64_t bytes = kMessageOverheadBytes;
    for (const auto& r : records) bytes += r.SerializedSize();
    for (const auto& p : pages) bytes += p.SizeBytes();
    return bytes;
  }
};

}  // namespace aurora::storage
