// Simple FIFO disk model with sampled service times.
//
// Storage nodes acknowledge writes only after the update-queue append is
// durable (§2.1 activities 1-2), so the disk is on the ack critical path;
// queueing here is what makes a "busy" storage node slow, which the
// hedged-read logic (§3.1) then routes around.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/sim/simulator.h"

namespace aurora::storage {

struct DiskOptions {
  /// Service time for one write op (log append): NVMe-ish.
  LatencyDistribution write_latency =
      LatencyDistribution::LogNormal(40, 0.3, 0.005, 10.0);
  /// Service time for one read op (block fetch).
  LatencyDistribution read_latency =
      LatencyDistribution::LogNormal(60, 0.3, 0.005, 10.0);
  /// Additional transfer time per byte (0 disables).
  double bytes_per_us = 2000.0;  // ~2 GB/s
};

/// One device per storage node, serving ops in FIFO order, one at a time.
class SimDisk {
 public:
  SimDisk(sim::Simulator* sim, DiskOptions options = {});

  void SubmitWrite(uint64_t bytes, sim::SimCallback done);
  void SubmitRead(uint64_t bytes, sim::SimCallback done);

  size_t QueueDepth() const { return queue_.size() + (busy_ ? 1 : 0); }
  const Histogram& op_latency() const { return op_latency_; }
  uint64_t ops_completed() const { return ops_completed_; }

 private:
  struct Op {
    SimDuration service_time;
    SimTime enqueued_at;
    sim::SimCallback done;
  };

  void Submit(bool is_write, uint64_t bytes, sim::SimCallback done);
  void StartNext();

  sim::Simulator* sim_;
  DiskOptions options_;
  Rng rng_;
  std::deque<Op> queue_;
  bool busy_ = false;
  Histogram op_latency_;  // includes queueing delay
  uint64_t ops_completed_ = 0;
};

}  // namespace aurora::storage
