// Simulated object store (stands in for Amazon S3, §2.1 activity 6).
//
// Storage nodes continuously archive chain-complete redo into the object
// store; garbage collection of the hot log is gated on the archive. The
// archive also provides point-in-time snapshots and the fallback source for
// repairing segments whose peers have already evicted old records.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/log/record.h"
#include "src/sim/simulator.h"

namespace aurora::storage {

struct ObjectStoreOptions {
  LatencyDistribution put_latency =
      LatencyDistribution::LogNormal(20 * kMillisecond, 0.4);
  LatencyDistribution get_latency =
      LatencyDistribution::LogNormal(30 * kMillisecond, 0.4);
};

/// Region-durable archive of redo records, keyed by (volume, protection
/// group). All segments of a PG carry the same log, so one archive per
/// PG deduplicates the six copies; the volume half of the key keeps
/// co-tenant PGs with equal ordinals apart.
class ObjectStore {
 public:
  ObjectStore(sim::Simulator* sim, ObjectStoreOptions options = {});

  /// Pins the archive's state (maps, rng, counters) to one simulator
  /// shard. Calls from other worker shards hop there (one pairwise
  /// lookahead each way — Simulator::LookaheadTo sizes the hop to the
  /// caller's (shard, home) matrix entry — dwarfed by the tens-of-ms
  /// archive latencies); context-less
  /// callers (external drivers, global events) run only between windows or
  /// at barriers and their archive mutation is scheduled onto the home
  /// shard regardless of ambient context — so parallel windows never touch
  /// the archive concurrently. Call during cluster setup.
  void SetHomeShard(sim::ShardKey shard) { home_shard_ = shard; }

  /// Archives `records` for `key`; `done(highest_lsn_archived)` runs after
  /// simulated upload latency. Records become visible at completion.
  void Put(ArchiveKey key, std::vector<log::RedoRecord> records,
           std::function<void(Lsn)> done);

  /// Fetches archived records for `key` in [lo, hi].
  void Get(ArchiveKey key, Lsn lo, Lsn hi,
           std::function<void(std::vector<log::RedoRecord>)> done);

  /// Highest contiguous archived LSN chain position per key is not
  /// tracked; this returns the max archived LSN (tests / PITR bounds).
  Lsn MaxArchivedLsn(ArchiveKey key) const;

  uint64_t bytes_stored() const { return bytes_stored_; }
  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }

 private:
  void DoPut(ArchiveKey key, std::vector<log::RedoRecord> records,
             std::function<void(Lsn)> done, sim::ShardKey caller);
  void DoGet(ArchiveKey key, Lsn lo, Lsn hi,
             std::function<void(std::vector<log::RedoRecord>)> done,
             sim::ShardKey caller);

  sim::Simulator* sim_;
  ObjectStoreOptions options_;
  sim::ShardKey home_shard_ = 0;
  Rng rng_;
  std::map<ArchiveKey, std::map<Lsn, log::RedoRecord>> archive_;
  uint64_t bytes_stored_ = 0;
  uint64_t puts_ = 0;
  uint64_t gets_ = 0;
};

}  // namespace aurora::storage
