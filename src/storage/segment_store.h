// Per-segment state held by a storage node: hot log, materialized block
// versions, epochs, hydration and scrub state.
//
// This implements the storage half of the paper's protocol:
//  * idempotent redo appends with SCL tracking (§2.3) — storage nodes "do
//    not have a vote in determining whether to accept a write, they must
//    do so";
//  * on-demand block materialization along the block chain (§2.2);
//  * out-of-place, non-destructive block versions retained until PGMRPL
//    advances (§3.4);
//  * epoch validation for volume and membership fencing (§2.4, §4.1);
//  * truncation-range enforcement so in-flight writes from before a crash
//    are annulled (§2.4);
//  * tail segments that store redo only (§4.2).

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/hot_log.h"
#include "src/log/record.h"
#include "src/quorum/membership.h"
#include "src/storage/messages.h"
#include "src/storage/page.h"

namespace aurora::storage {

/// Counters exposed per segment (drive the Figure-2 pipeline benchmark).
struct SegmentStats {
  uint64_t records_received = 0;
  uint64_t records_duplicate = 0;
  uint64_t records_coalesced = 0;
  uint64_t records_gossip_filled = 0;
  uint64_t records_gced = 0;
  uint64_t records_backed_up = 0;
  uint64_t reads_served = 0;
  uint64_t reads_rejected = 0;
  uint64_t stale_epoch_rejections = 0;
  uint64_t scrub_corruptions_found = 0;
  uint64_t versions_gced = 0;
};

/// One segment replica. All methods are local (the owning StorageNode
/// mediates network and disk latency).
class SegmentStore {
 public:
  SegmentStore(quorum::SegmentInfo info, ProtectionGroupId pg,
               quorum::PgConfig config, VolumeEpoch volume_epoch,
               bool hydrated = true);

  SegmentId id() const { return info_.id; }
  ProtectionGroupId pg() const { return pg_; }
  /// Owning volume (tenant); 0 in single-volume clusters. Together with
  /// pg() and id() this forms the (volume, pg, segment) key a shared
  /// segment server files this replica under.
  VolumeId volume() const { return info_.volume; }
  /// Fleet-wide archive namespace key for this segment's log: pg ids are
  /// per-volume ordinals, so the archive tier keys by (volume, pg).
  ArchiveKey archive_key() const { return MakeArchiveKey(info_.volume, pg_); }
  bool is_full() const { return info_.is_full; }
  bool hydrated() const { return hydrated_; }
  Lsn scl() const { return hot_log_.scl(); }
  VolumeEpoch volume_epoch() const { return volume_epoch_; }
  const quorum::PgConfig& config() const { return config_; }
  const SegmentStats& stats() const { return stats_; }
  const log::SegmentHotLog& hot_log() const { return hot_log_; }

  /// Rejects requests carrying stale epochs (§4.1: "storage nodes will not
  /// accept requests at stale volume epochs"). A request at a NEWER volume
  /// epoch teaches the node the new epoch (epochs are issued by a single
  /// authority and monotone).
  Status CheckEpochs(const EpochVector& epochs);

  /// Appends a batch of redo records (idempotent; §2.2 steps 1-3).
  Status Append(const std::vector<log::RedoRecord>& records);

  /// Appends records learned via gossip (same as Append, separate stat).
  Status AbsorbGossip(const std::vector<log::RedoRecord>& records);

  /// Gossip reply: the chain records a peer at `peer_scl` is missing.
  std::vector<log::RedoRecord> ChainAfter(Lsn peer_scl,
                                          size_t max_records) const {
    return hot_log_.ChainAfter(peer_scl, max_records);
  }

  /// Applies up to `max_records` chain-complete records (<= SCL) to block
  /// versions (§2.1 activity 5). No-op for tail segments. Returns records
  /// applied.
  size_t CoalesceStep(size_t max_records);

  /// Serves a block version at or below `read_lsn`, materializing
  /// on-demand from the newest coalesced version plus hot-log records
  /// (§2.2). Only full segments serve pages. The node only accepts reads
  /// between PGMRPL and SCL (§3.4).
  Result<Page> ReadPage(BlockId block, Lsn read_lsn);

  /// Observes the instance's minimum read point (§3.4); unlocks GC below.
  void ObservePgmrpl(Lsn pgmrpl);
  Lsn pgmrpl() const { return pgmrpl_; }

  /// Marks records at or below `lsn` as durably backed up (§2.1 act. 6).
  void MarkBackedUp(Lsn lsn);
  Lsn backup_lsn() const { return backup_lsn_; }

  /// Records eligible for the next backup batch.
  std::vector<log::RedoRecord> PendingBackup(size_t max_records) const;

  /// Garbage collection (§2.1 activity 7): evicts hot-log records that are
  /// coalesced (full) or backed up, and block versions older than PGMRPL
  /// (keeping the newest version at or below it). Returns items removed.
  size_t GarbageCollect();

  /// Scrub (§2.1 activity 8): re-verifies stored record checksums. Corrupt
  /// records are dropped (gossip will re-fill them). Returns corruptions.
  size_t Scrub();

  /// Installs a new membership config. Accepts monotonically newer epochs
  /// from the membership authority; rejects stale or non-matching ones.
  Status UpdateMembership(const MembershipUpdateRequest& request);

  /// Installs a new volume epoch and optional truncation range (§2.4).
  Status UpdateVolumeEpoch(const VolumeEpochUpdateRequest& request);

  /// Hydration of a replacement segment (§4.2): absorb peer state. The
  /// segment reports hydrated once its SCL reaches `target_scl`.
  void BeginHydration(Lsn target_scl);
  Status AbsorbHydration(const HydrationResponse& response);

  /// Builds a hydration reply for a peer (donor side).
  HydrationResponse BuildHydration(const HydrationRequest& request) const;

  /// Point-in-time restore (§2.1 activity 6): discards ALL local state and
  /// reloads from archived records at or below `restore_point`, installing
  /// `new_epoch` and a truncation range that annuls everything above the
  /// restore point. Only records on the contiguous chain survive.
  void ResetToArchive(const std::vector<log::RedoRecord>& records,
                      Lsn restore_point, VolumeEpoch new_epoch);

  /// Test hook: flips a byte inside a stored record's payload so Scrub()
  /// finds it.
  bool CorruptRecordForTest(Lsn lsn);

  /// Test/inspection: number of retained versions for a block.
  size_t VersionCount(BlockId block) const;
  uint64_t TotalVersionBytes() const;
  uint64_t HotLogBytes() const { return hot_log_.TotalBytes(); }
  Lsn coalesce_cursor() const { return coalesce_cursor_; }
  size_t PendingRedoCount() const;

 private:
  void IndexRecord(const log::RedoRecord& record);
  void MaybeFinishHydration();
  const Page* LatestVersionAtOrBelow(BlockId block, Lsn lsn) const;

  quorum::SegmentInfo info_;
  ProtectionGroupId pg_;
  quorum::PgConfig config_;
  VolumeEpoch volume_epoch_;
  bool hydrated_ = true;
  Lsn hydration_target_ = kInvalidLsn;

  log::SegmentHotLog hot_log_;
  // Record checksums captured at append; Scrub() re-verifies.
  std::map<Lsn, uint32_t> record_crcs_;
  // Per-block pending (un-coalesced) redo, in LSN order.
  std::map<BlockId, std::map<Lsn, log::RedoRecord>> pending_redo_;
  // Out-of-place materialized versions per block, keyed by page_lsn.
  std::map<BlockId, std::map<Lsn, Page>> versions_;

  Lsn coalesce_cursor_ = kInvalidLsn;  // all records <= this are coalesced
  Lsn pgmrpl_ = kInvalidLsn;
  Lsn backup_lsn_ = kInvalidLsn;

  SegmentStats stats_;
};

}  // namespace aurora::storage
