#include "src/storage/segment_store.h"

#include <algorithm>
#include <cassert>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace aurora::storage {

namespace {
// Fleet-wide storage counters, shared by every segment on every node (the
// registry aggregates; per-segment breakdowns were not worth the name
// cardinality). Resolved once, lazily.
struct StoreMetrics {
  metrics::Counter* gossip_filled;
  metrics::Counter* scrub_corruptions;
  metrics::Counter* stale_epoch_rejections;
  metrics::Counter* records_received;
  metrics::Counter* reads_served;
};
StoreMetrics& M() {
  static StoreMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return StoreMetrics{r.GetCounter("storage.gossip_filled_records"),
                        r.GetCounter("storage.scrub_corruptions"),
                        r.GetCounter("storage.stale_epoch_rejections"),
                        r.GetCounter("storage.records_received"),
                        r.GetCounter("storage.reads_served")};
  }();
  return m;
}
}  // namespace

SegmentStore::SegmentStore(quorum::SegmentInfo info, ProtectionGroupId pg,
                           quorum::PgConfig config, VolumeEpoch volume_epoch,
                           bool hydrated)
    : info_(info),
      pg_(pg),
      config_(std::move(config)),
      volume_epoch_(volume_epoch),
      hydrated_(hydrated) {}

Status SegmentStore::CheckEpochs(const EpochVector& epochs) {
  if (epochs.volume_epoch < volume_epoch_) {
    stats_.stale_epoch_rejections++;
    AURORA_COUNT(M().stale_epoch_rejections, 1);
    return Status::StaleEpoch("stale volume epoch " +
                              std::to_string(epochs.volume_epoch) + " < " +
                              std::to_string(volume_epoch_));
  }
  // Epochs are minted by a single authority and monotone: a newer volume
  // epoch teaches this node it missed the recovery write.
  volume_epoch_ = std::max(volume_epoch_, epochs.volume_epoch);
  if (epochs.membership_epoch < config_.epoch()) {
    stats_.stale_epoch_rejections++;
    AURORA_COUNT(M().stale_epoch_rejections, 1);
    return Status::StaleEpoch("stale membership epoch " +
                              std::to_string(epochs.membership_epoch) +
                              " < " + std::to_string(config_.epoch()));
  }
  return Status::OK();
}

void SegmentStore::IndexRecord(const log::RedoRecord& record) {
  record_crcs_[record.lsn] = log::RecordBodyCrc(record);
  // Commit records carry a status-index page op and materialize like any
  // other change; only control records carry no block payload.
  if (info_.is_full && record.type != log::RecordType::kControl &&
      record.block != kInvalidBlock) {
    pending_redo_[record.block].emplace(record.lsn, record);
  }
}

Status SegmentStore::Append(const std::vector<log::RedoRecord>& records) {
  for (const auto& record : records) {
    if (record.pg != pg_) {
      return Status::InvalidArgument("record addressed to wrong PG");
    }
    if (hot_log_.Contains(record.lsn)) {
      stats_.records_duplicate++;
      continue;
    }
    const size_t before = hot_log_.RecordCount();
    AURORA_RETURN_IF_ERROR(hot_log_.Append(record));
    if (hot_log_.RecordCount() > before) {
      stats_.records_received++;
      AURORA_COUNT(M().records_received, 1);
      IndexRecord(record);
    }
  }
  MaybeFinishHydration();
  return Status::OK();
}

Status SegmentStore::AbsorbGossip(const std::vector<log::RedoRecord>& records) {
  for (const auto& record : records) {
    if (hot_log_.Contains(record.lsn)) continue;
    const size_t before = hot_log_.RecordCount();
    AURORA_RETURN_IF_ERROR(hot_log_.Append(record));
    if (hot_log_.RecordCount() > before) {
      stats_.records_gossip_filled++;
      AURORA_COUNT(M().gossip_filled, 1);
      IndexRecord(record);
    }
  }
  MaybeFinishHydration();
  return Status::OK();
}

size_t SegmentStore::CoalesceStep(size_t max_records) {
  if (!info_.is_full) return 0;
  size_t applied = 0;
  const Lsn scl = hot_log_.scl();
  for (auto block_it = pending_redo_.begin();
       block_it != pending_redo_.end() && applied < max_records;) {
    auto& pending = block_it->second;
    auto& block_versions = versions_[block_it->first];
    while (!pending.empty() && applied < max_records) {
      const auto& [lsn, record] = *pending.begin();
      if (lsn > scl) break;  // not yet chain-complete
      const Page* latest =
          block_versions.empty() ? nullptr : &block_versions.rbegin()->second;
      const Lsn latest_lsn = latest ? latest->page_lsn : kInvalidLsn;
      if (lsn <= latest_lsn) {
        // Already applied via on-demand materialization or hydration.
        pending.erase(pending.begin());
        continue;
      }
      if (record.prev_lsn_block != latest_lsn) {
        // Hole in the block chain below this record (e.g. version state
        // absorbed from hydration is ahead/behind); wait for gossip.
        break;
      }
      Page next = latest ? *latest : Page{};
      next.id = block_it->first;
      const Status st = ApplyRedoPayload(&next, record.payload.view(), lsn);
      if (!st.ok()) {
        AURORA_ERROR << "segment " << info_.id << " coalesce failed: "
                     << st.ToString();
        break;
      }
      block_versions.emplace(lsn, std::move(next));
      pending.erase(pending.begin());
      stats_.records_coalesced++;
      applied++;
    }
    if (pending.empty()) {
      block_it = pending_redo_.erase(block_it);
    } else {
      ++block_it;
    }
  }
  return applied;
}

const Page* SegmentStore::LatestVersionAtOrBelow(BlockId block,
                                                 Lsn lsn) const {
  auto it = versions_.find(block);
  if (it == versions_.end() || it->second.empty()) return nullptr;
  auto v = it->second.upper_bound(lsn);
  if (v == it->second.begin()) return nullptr;
  --v;
  return &v->second;
}

Result<Page> SegmentStore::ReadPage(BlockId block, Lsn read_lsn) {
  if (!info_.is_full) {
    stats_.reads_rejected++;
    return Status::NotSupported("tail segments store redo only");
  }
  if (!hydrated_) {
    stats_.reads_rejected++;
    return Status::Unavailable("segment hydrating");
  }
  if (pgmrpl_ != kInvalidLsn && read_lsn < pgmrpl_) {
    stats_.reads_rejected++;
    return Status::OutOfRange("read below PGMRPL");
  }
  if (read_lsn > hot_log_.scl()) {
    stats_.reads_rejected++;
    return Status::Unavailable("read above SCL");
  }
  const Page* base = LatestVersionAtOrBelow(block, read_lsn);
  // Collect pending redo in (base_lsn, read_lsn] for on-demand
  // materialization along the block chain (§2.2).
  const Lsn base_lsn = base ? base->page_lsn : kInvalidLsn;
  Page page;
  if (base != nullptr) {
    page = *base;
  } else {
    page.id = block;
  }
  auto pending_it = pending_redo_.find(block);
  bool applied_any = false;
  if (pending_it != pending_redo_.end()) {
    for (auto it = pending_it->second.upper_bound(base_lsn);
         it != pending_it->second.end() && it->first <= read_lsn; ++it) {
      const auto& record = it->second;
      if (record.prev_lsn_block != page.page_lsn) {
        stats_.reads_rejected++;
        return Status::Unavailable("block chain hole during materialization");
      }
      AURORA_RETURN_IF_ERROR(ApplyRedoPayload(&page, record.payload.view(),
                                              record.lsn));
      applied_any = true;
    }
  }
  if (base == nullptr && !applied_any) {
    stats_.reads_rejected++;
    return Status::NotFound("block has no data at or below read point");
  }
  if (applied_any) {
    // Keep the on-demand result (background coalesce will skip past it).
    versions_[block].emplace(page.page_lsn, page);
  }
  stats_.reads_served++;
  AURORA_COUNT(M().reads_served, 1);
  return page;
}

void SegmentStore::ObservePgmrpl(Lsn pgmrpl) {
  pgmrpl_ = std::max(pgmrpl_, pgmrpl);
}

void SegmentStore::MarkBackedUp(Lsn lsn) {
  backup_lsn_ = std::max(backup_lsn_, lsn);
}

std::vector<log::RedoRecord> SegmentStore::PendingBackup(
    size_t max_records) const {
  // Only chain-complete records are backed up (no holes in the archive).
  std::vector<log::RedoRecord> out;
  for (const auto& record :
       hot_log_.RecordsAbove(backup_lsn_, max_records)) {
    if (record.lsn > hot_log_.scl()) break;
    out.push_back(record);
  }
  return out;
}

size_t SegmentStore::GarbageCollect() {
  size_t removed = 0;
  // Hot-log eviction: records must be backed up AND (coalesced, for full
  // segments). The eviction point is a prefix.
  Lsn evict_to = std::min(backup_lsn_, hot_log_.scl());
  if (info_.is_full) {
    for (const auto& [block, pending] : pending_redo_) {
      if (!pending.empty()) {
        evict_to = std::min(evict_to, pending.begin()->first - 1);
      }
    }
  }
  if (evict_to != kInvalidLsn && evict_to > hot_log_.gc_floor()) {
    const size_t before = hot_log_.RecordCount();
    hot_log_.EvictBelow(evict_to);
    removed += before - hot_log_.RecordCount();
    stats_.records_gced += before - hot_log_.RecordCount();
    record_crcs_.erase(record_crcs_.begin(),
                       record_crcs_.upper_bound(evict_to));
  }
  // Version GC: older versions are reclaimed only once no reader (writer
  // instance or replica) can need them (§3.4): keep everything above
  // PGMRPL plus the newest version at or below it.
  if (pgmrpl_ != kInvalidLsn) {
    for (auto& [block, block_versions] : versions_) {
      auto keep = block_versions.upper_bound(pgmrpl_);
      if (keep != block_versions.begin()) --keep;
      const size_t before = block_versions.size();
      block_versions.erase(block_versions.begin(), keep);
      removed += before - block_versions.size();
      stats_.versions_gced += before - block_versions.size();
    }
  }
  return removed;
}

size_t SegmentStore::Scrub() {
  size_t corruptions = 0;
  std::vector<Lsn> bad;
  for (const auto& [lsn, crc] : record_crcs_) {
    const log::RedoRecord* record = hot_log_.Find(lsn);
    if (record == nullptr) continue;
    if (log::RecordBodyCrc(*record) != crc) {
      bad.push_back(lsn);
    }
  }
  for (Lsn lsn : bad) {
    hot_log_.Remove(lsn);
    record_crcs_.erase(lsn);
    // Drop any pending-redo entry built from the corrupt record.
    for (auto& [block, pending] : pending_redo_) pending.erase(lsn);
    corruptions++;
    stats_.scrub_corruptions_found++;
    AURORA_COUNT(M().scrub_corruptions, 1);
    AURORA_WARN << "segment " << info_.id << " scrub dropped corrupt record "
                << lsn;
  }
  return corruptions;
}

Status SegmentStore::UpdateMembership(const MembershipUpdateRequest& request) {
  // Monotone install: configs are minted by the single membership
  // authority with strictly increasing epochs, so any strictly newer
  // config is accepted (this also lets a node that missed an intermediate
  // epoch catch up). A request at or below the stored epoch is stale —
  // "clients with stale membership epochs have their requests rejected
  // and must update membership information" (§4.1).
  if (request.config.epoch() <= config_.epoch()) {
    stats_.stale_epoch_rejections++;
    AURORA_COUNT(M().stale_epoch_rejections, 1);
    return Status::StaleEpoch("membership epoch " +
                              std::to_string(request.config.epoch()) +
                              " <= " + std::to_string(config_.epoch()));
  }
  config_ = request.config;
  volume_epoch_ = std::max(volume_epoch_, request.volume_epoch);
  return Status::OK();
}

Status SegmentStore::UpdateVolumeEpoch(
    const VolumeEpochUpdateRequest& request) {
  if (request.new_epoch <= volume_epoch_) {
    stats_.stale_epoch_rejections++;
    AURORA_COUNT(M().stale_epoch_rejections, 1);
    return Status::StaleEpoch("volume epoch " +
                              std::to_string(request.new_epoch) + " <= " +
                              std::to_string(volume_epoch_));
  }
  volume_epoch_ = request.new_epoch;
  if (request.truncation.has_value()) {
    const auto& range = *request.truncation;
    hot_log_.Truncate(range);
    record_crcs_.erase(record_crcs_.lower_bound(range.start),
                       record_crcs_.upper_bound(range.end));
    // Drop pending redo and materialized versions inside the annulled
    // range (§2.4: in-flight writes completing during recovery must be
    // ignored; versions built from annulled records are invalid).
    for (auto it = pending_redo_.begin(); it != pending_redo_.end();) {
      auto& pending = it->second;
      pending.erase(pending.lower_bound(range.start),
                    pending.upper_bound(range.end));
      it = pending.empty() ? pending_redo_.erase(it) : std::next(it);
    }
    for (auto& [block, block_versions] : versions_) {
      block_versions.erase(block_versions.lower_bound(range.start),
                           block_versions.end());
    }
  }
  return Status::OK();
}

void SegmentStore::BeginHydration(Lsn target_scl) {
  hydrated_ = false;
  hydration_target_ = target_scl;
  MaybeFinishHydration();
}

void SegmentStore::MaybeFinishHydration() {
  if (!hydrated_ && hot_log_.scl() >= hydration_target_) {
    hydrated_ = true;
    AURORA_DEBUG << "segment " << info_.id << " hydrated to scl "
                 << hot_log_.scl();
  }
}

Status SegmentStore::AbsorbHydration(const HydrationResponse& response) {
  for (const auto& range : response.truncations) {
    hot_log_.Truncate(range);
  }
  AURORA_RETURN_IF_ERROR(AbsorbGossip(response.records));
  for (const auto& page : response.pages) {
    auto& block_versions = versions_[page.id];
    block_versions.emplace(page.page_lsn, page);
    // Pending redo at or below the absorbed version is already reflected.
    auto pending_it = pending_redo_.find(page.id);
    if (pending_it != pending_redo_.end()) {
      auto& pending = pending_it->second;
      pending.erase(pending.begin(), pending.upper_bound(page.page_lsn));
      if (pending.empty()) pending_redo_.erase(pending_it);
    }
  }
  MaybeFinishHydration();
  return Status::OK();
}

HydrationResponse SegmentStore::BuildHydration(
    const HydrationRequest& request) const {
  HydrationResponse response;
  response.status = Status::OK();
  response.truncations = hot_log_.truncations();
  constexpr size_t kMaxRecords = 4096;
  response.records = hot_log_.RecordsAbove(request.have_scl, kMaxRecords);
  if (request.need_blocks && info_.is_full) {
    for (const auto& [block, block_versions] : versions_) {
      if (block_versions.empty()) continue;
      // The newest version is sufficient for repair; history below PGMRPL
      // is not needed by any reader.
      response.pages.push_back(block_versions.rbegin()->second);
    }
  }
  return response;
}

void SegmentStore::ResetToArchive(const std::vector<log::RedoRecord>& records,
                                  Lsn restore_point, VolumeEpoch new_epoch) {
  // Truncation history survives the reset: ranges annulled by earlier
  // recoveries/restores may still have records in the archive (they were
  // backed up before being annulled) and must not be resurrected.
  const std::vector<log::TruncationRange> annulled =
      hot_log_.truncations();
  hot_log_ = log::SegmentHotLog();
  for (const auto& range : annulled) hot_log_.Truncate(range);
  record_crcs_.clear();
  pending_redo_.clear();
  versions_.clear();
  coalesce_cursor_ = kInvalidLsn;
  pgmrpl_ = kInvalidLsn;
  backup_lsn_ = kInvalidLsn;
  hydrated_ = true;
  hydration_target_ = kInvalidLsn;
  volume_epoch_ = new_epoch;
  for (const auto& record : records) {
    if (record.lsn > restore_point) continue;
    if (record.pg != pg_) continue;
    if (hot_log_.Append(record).ok() &&
        hot_log_.Contains(record.lsn)) {
      IndexRecord(record);
    }
  }
  // Everything the archive held was once backed up by definition.
  backup_lsn_ = hot_log_.scl();
  // Annul the old timeline above the restore point (writes archived after
  // it or still straggling through the network). The range width matches
  // the engine's truncation gap so the post-restore recovery allocates
  // new LSNs just above it.
  hot_log_.Truncate(
      log::TruncationRange{restore_point + 1, restore_point + (1ULL << 30)});
}

bool SegmentStore::CorruptRecordForTest(Lsn lsn) {
  // Payload buffers are shared across the fleet; the hot log does a
  // copy-on-write flip so only this segment's copy goes bad.
  return hot_log_.CorruptPayloadForTest(lsn);
}

size_t SegmentStore::VersionCount(BlockId block) const {
  auto it = versions_.find(block);
  return it == versions_.end() ? 0 : it->second.size();
}

uint64_t SegmentStore::TotalVersionBytes() const {
  uint64_t bytes = 0;
  for (const auto& [block, block_versions] : versions_) {
    for (const auto& [lsn, page] : block_versions) bytes += page.SizeBytes();
  }
  return bytes;
}

size_t SegmentStore::PendingRedoCount() const {
  size_t n = 0;
  for (const auto& [block, pending] : pending_redo_) n += pending.size();
  return n;
}

}  // namespace aurora::storage
