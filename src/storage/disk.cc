#include "src/storage/disk.h"

#include <algorithm>

namespace aurora::storage {

SimDisk::SimDisk(sim::Simulator* sim, DiskOptions options)
    : sim_(sim), options_(options), rng_(sim->rng().Fork()) {}

void SimDisk::SubmitWrite(uint64_t bytes, sim::SimCallback done) {
  Submit(true, bytes, std::move(done));
}

void SimDisk::SubmitRead(uint64_t bytes, sim::SimCallback done) {
  Submit(false, bytes, std::move(done));
}

void SimDisk::Submit(bool is_write, uint64_t bytes,
                     sim::SimCallback done) {
  const auto& dist =
      is_write ? options_.write_latency : options_.read_latency;
  double service = static_cast<double>(dist.Sample(rng_));
  if (options_.bytes_per_us > 0.0) {
    service += static_cast<double>(bytes) / options_.bytes_per_us;
  }
  queue_.push_back(Op{static_cast<SimDuration>(std::max(1.0, service)),
                      sim_->Now(), std::move(done)});
  if (!busy_) StartNext();
}

void SimDisk::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Op op = std::move(queue_.front());
  queue_.pop_front();
  sim_->Schedule(op.service_time, [this, enqueued_at = op.enqueued_at,
                                   done = std::move(op.done)]() mutable {
    op_latency_.Record(sim_->Now() - enqueued_at);
    ops_completed_++;
    done();
    StartNext();
  });
}

}  // namespace aurora::storage
