#include "src/storage/object_store.h"

#include <memory>

namespace aurora::storage {

ObjectStore::ObjectStore(sim::Simulator* sim, ObjectStoreOptions options)
    : sim_(sim), options_(options), rng_(sim->rng().Fork()) {}

// Put/Get from a foreign worker shard hop to the home shard first and
// deliver the completion back on the caller's shard, so the archive state
// mutates on exactly one event stream. Same-shard and context-less calls
// take the direct path, which is bit-identical to the pre-sharding object
// store (same rng draws, same stamps: ScheduleOn's same-shard / external
// paths degenerate to plain Schedule). Context-less callers (external
// drivers, global events) only ever run between windows or at barriers, so
// their entry-side rng draw / counter bump cannot race; the archive
// mutation itself is pinned by scheduling it explicitly on home_shard_
// below, whatever the ambient context or ShardScope.

void ObjectStore::Put(ArchiveKey pg,
                      std::vector<log::RedoRecord> records,
                      std::function<void(Lsn)> done) {
  const sim::ShardKey caller = sim_->ExecutingShard();
  if (caller != sim::kShardNone && caller != home_shard_) {
    auto shared =
        std::make_shared<std::vector<log::RedoRecord>>(std::move(records));
    sim_->ScheduleOn(
        home_shard_, sim_->LookaheadTo(home_shard_),
        [this, pg, shared, caller, done = std::move(done)]() mutable {
          DoPut(pg, std::move(*shared), std::move(done), caller);
        },
        "objstore.put_hop");
    return;
  }
  DoPut(pg, std::move(records), std::move(done), caller);
}

void ObjectStore::DoPut(ArchiveKey pg,
                        std::vector<log::RedoRecord> records,
                        std::function<void(Lsn)> done, sim::ShardKey caller) {
  puts_++;
  const SimDuration latency = options_.put_latency.Sample(rng_);
  auto shared =
      std::make_shared<std::vector<log::RedoRecord>>(std::move(records));
  sim_->ScheduleOn(home_shard_, latency, [this, pg, shared, caller,
                                          done = std::move(done)]() mutable {
    Lsn max_lsn = kInvalidLsn;
    auto& pg_archive = archive_[pg];
    for (auto& record : *shared) {
      max_lsn = std::max(max_lsn, record.lsn);
      auto [it, inserted] = pg_archive.emplace(record.lsn, std::move(record));
      if (inserted) bytes_stored_ += it->second.SerializedSize();
    }
    if (caller != sim::kShardNone && caller != home_shard_) {
      sim_->ScheduleOn(
          caller, sim_->LookaheadTo(caller),
          [done = std::move(done), max_lsn]() { done(max_lsn); },
          "objstore.put_done");
      return;
    }
    done(max_lsn);
  });
}

void ObjectStore::Get(ArchiveKey pg, Lsn lo, Lsn hi,
                      std::function<void(std::vector<log::RedoRecord>)> done) {
  const sim::ShardKey caller = sim_->ExecutingShard();
  if (caller != sim::kShardNone && caller != home_shard_) {
    sim_->ScheduleOn(
        home_shard_, sim_->LookaheadTo(home_shard_),
        [this, pg, lo, hi, caller, done = std::move(done)]() mutable {
          DoGet(pg, lo, hi, std::move(done), caller);
        },
        "objstore.get_hop");
    return;
  }
  DoGet(pg, lo, hi, std::move(done), caller);
}

void ObjectStore::DoGet(ArchiveKey pg, Lsn lo, Lsn hi,
                        std::function<void(std::vector<log::RedoRecord>)> done,
                        sim::ShardKey caller) {
  gets_++;
  const SimDuration latency = options_.get_latency.Sample(rng_);
  sim_->ScheduleOn(home_shard_, latency, [this, pg, lo, hi, caller,
                                          done = std::move(done)]() mutable {
    std::vector<log::RedoRecord> out;
    auto it = archive_.find(pg);
    if (it != archive_.end()) {
      for (auto rec = it->second.lower_bound(lo);
           rec != it->second.end() && rec->first <= hi; ++rec) {
        out.push_back(rec->second);
      }
    }
    if (caller != sim::kShardNone && caller != home_shard_) {
      auto shared =
          std::make_shared<std::vector<log::RedoRecord>>(std::move(out));
      sim_->ScheduleOn(
          caller, sim_->LookaheadTo(caller),
          [done = std::move(done), shared]() { done(std::move(*shared)); },
          "objstore.get_done");
      return;
    }
    done(std::move(out));
  });
}

Lsn ObjectStore::MaxArchivedLsn(ArchiveKey pg) const {
  auto it = archive_.find(pg);
  if (it == archive_.end() || it->second.empty()) return kInvalidLsn;
  return it->second.rbegin()->first;
}

}  // namespace aurora::storage
