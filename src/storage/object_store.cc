#include "src/storage/object_store.h"

#include <memory>

namespace aurora::storage {

ObjectStore::ObjectStore(sim::Simulator* sim, ObjectStoreOptions options)
    : sim_(sim), options_(options), rng_(sim->rng().Fork()) {}

void ObjectStore::Put(ProtectionGroupId pg,
                      std::vector<log::RedoRecord> records,
                      std::function<void(Lsn)> done) {
  puts_++;
  const SimDuration latency = options_.put_latency.Sample(rng_);
  auto shared =
      std::make_shared<std::vector<log::RedoRecord>>(std::move(records));
  sim_->Schedule(latency, [this, pg, shared, done = std::move(done)]() {
    Lsn max_lsn = kInvalidLsn;
    auto& pg_archive = archive_[pg];
    for (auto& record : *shared) {
      max_lsn = std::max(max_lsn, record.lsn);
      auto [it, inserted] = pg_archive.emplace(record.lsn, std::move(record));
      if (inserted) bytes_stored_ += it->second.SerializedSize();
    }
    done(max_lsn);
  });
}

void ObjectStore::Get(ProtectionGroupId pg, Lsn lo, Lsn hi,
                      std::function<void(std::vector<log::RedoRecord>)> done) {
  gets_++;
  const SimDuration latency = options_.get_latency.Sample(rng_);
  sim_->Schedule(latency, [this, pg, lo, hi, done = std::move(done)]() {
    std::vector<log::RedoRecord> out;
    auto it = archive_.find(pg);
    if (it != archive_.end()) {
      for (auto rec = it->second.lower_bound(lo);
           rec != it->second.end() && rec->first <= hi; ++rec) {
        out.push_back(rec->second);
      }
    }
    done(std::move(out));
  });
}

Lsn ObjectStore::MaxArchivedLsn(ProtectionGroupId pg) const {
  auto it = archive_.find(pg);
  if (it == archive_.end() || it->second.empty()) return kInvalidLsn;
  return it->second.rbegin()->first;
}

}  // namespace aurora::storage
