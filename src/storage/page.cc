#include "src/storage/page.h"

#include <cstring>

namespace aurora::storage {

namespace {

void PutU16(std::string& out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out.append(buf, 2);
}

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutString(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU16(uint16_t* v) { return ReadRaw(v, 2); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }

  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t Page::SizeBytes() const {
  uint64_t size = 40;  // header
  for (const auto& [k, v] : entries) size += k.size() + v.size() + 8;
  return size;
}

std::string Page::ToString() const {
  std::string out = "Page{" + std::to_string(id) + " lsn=" +
                    std::to_string(page_lsn) + " type=" +
                    std::to_string(static_cast<int>(type)) + " entries=" +
                    std::to_string(entries.size()) + "}";
  return out;
}

std::string EncodePageOp(const PageOp& op) {
  std::string out;
  out.push_back(static_cast<char>(op.type));
  out.push_back(static_cast<char>(op.page_type));
  PutU16(out, op.level);
  PutU64(out, op.next);
  PutU64(out, op.prev);
  PutString(out, op.key);
  PutString(out, op.value);
  return out;
}

Result<PageOp> DecodePageOp(std::string_view payload) {
  if (payload.size() < 2) return Status::Corruption("page op too short");
  PageOp op;
  const auto type = static_cast<uint8_t>(payload[0]);
  const auto page_type = static_cast<uint8_t>(payload[1]);
  if (type > static_cast<uint8_t>(PageOpType::kTruncateFrom) ||
      page_type > static_cast<uint8_t>(PageType::kMeta)) {
    return Status::Corruption("bad page op enum");
  }
  op.type = static_cast<PageOpType>(type);
  op.page_type = static_cast<PageType>(page_type);
  Reader reader(payload.substr(2));
  uint64_t next, prev;
  if (!reader.ReadU16(&op.level) || !reader.ReadU64(&next) ||
      !reader.ReadU64(&prev) || !reader.ReadString(&op.key) ||
      !reader.ReadString(&op.value) || !reader.AtEnd()) {
    return Status::Corruption("truncated page op");
  }
  op.next = next;
  op.prev = prev;
  return op;
}

Status ApplyPageOp(Page* page, const PageOp& op, Lsn lsn) {
  switch (op.type) {
    case PageOpType::kFormat:
      page->type = op.page_type;
      page->level = op.level;
      page->entries.clear();
      page->next = kInvalidBlock;
      page->prev = kInvalidBlock;
      break;
    case PageOpType::kInsert:
      page->entries.Upsert(op.key, op.value);
      break;
    case PageOpType::kErase:
      page->entries.Erase(op.key);
      break;
    case PageOpType::kSetLinks:
      page->next = op.next;
      page->prev = op.prev;
      break;
    case PageOpType::kTruncateFrom:
      page->entries.TruncateFrom(op.key);
      break;
  }
  page->page_lsn = lsn;
  return Status::OK();
}

Status ApplyRedoPayload(Page* page, std::string_view payload, Lsn lsn) {
  auto op = DecodePageOp(payload);
  if (!op.ok()) return op.status();
  return ApplyPageOp(page, *op, lsn);
}

}  // namespace aurora::storage
