// Aurora read replicas (§3.2–§3.4).
//
// A replica attaches to the SAME storage volume as the writer: it receives
// the physical redo stream from the writer and applies it ONLY to data
// blocks present in its local cache, in LSN order and atomically in MTR
// chunks; records for uncached blocks are discarded, since those blocks
// can always be read from shared storage (§3.2). Read views anchor at VDL
// control points shipped by the writer, and transaction visibility uses
// shipped commit notifications plus the persistent status index; MVCC
// reversion uses undo exactly as on the writer (§3.4).
//
// Invariants implemented here (§3.3):
//  1. replica read views lag the writer's durability points (anchor = the
//     last shipped VDL);
//  2. structural changes become visible atomically (MTR-chunk application
//     to cached blocks; chain mismatch invalidates the cached page);
//  3. read views anchor at points equivalent to writer-side points (the
//     shipped VDLs themselves).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/engine/btree.h"
#include "src/engine/buffer_cache.h"
#include "src/engine/db_instance.h"
#include "src/engine/storage_driver.h"
#include "src/sim/network.h"
#include "src/txn/txn_manager.h"

namespace aurora::replica {

struct ReplicaOptions {
  size_t cache_pages = 8192;
  engine::BTreeOptions btree;
  engine::DriverOptions driver;
  /// How often the replica reports its minimum read point to the writer
  /// (feeds PGMRPL, §3.4) and refreshes segment SCL knowledge.
  SimDuration report_interval = 100 * kMillisecond;
  /// How long an anchored read (read-your-writes) waits for this
  /// replica's VDL to reach the anchor before failing with Unavailable
  /// so the session can fall back to the writer.
  SimDuration anchor_wait_timeout = 2 * kSecond;
  /// Strict stream continuity: drop the whole block cache when the
  /// replication stream skips a sequence number (events lost on the
  /// wire) or switches writers. Without it a stale cached page is only
  /// detected when that block's NEXT record arrives (chain mismatch,
  /// §3.2) — correct for the paper's eventual model, but a gap window
  /// where VDL has advanced past a silently stale page would let an
  /// anchored read return old data. Off by default: enabling it changes
  /// read schedules under chaos (golden fingerprints stay put).
  bool strict_stream_continuity = false;
};

struct ReplicaStats {
  uint64_t mtrs_applied = 0;
  uint64_t records_applied = 0;
  uint64_t records_discarded_uncached = 0;
  uint64_t pages_invalidated = 0;
  uint64_t gets = 0;
  uint64_t storage_fallback_reads = 0;
  uint64_t anchored_gets = 0;
  /// Anchored reads that had to park for a VDL advance.
  uint64_t anchor_waits = 0;
  uint64_t anchor_timeouts = 0;
  /// Replication-stream continuity breaks observed (seq gap or writer
  /// switch after the first event).
  uint64_t stream_gaps = 0;
  /// Cache drops forced by strict_stream_continuity.
  uint64_t gap_cache_drops = 0;
};

/// One read replica instance.
class ReadReplica : public sim::NodeLifecycleListener {
 public:
  ReadReplica(sim::Simulator* sim, sim::Network* network, NodeId id,
              AzId az, storage::NodeResolver resolver, NodeId writer,
              const quorum::VolumeGeometry& geometry,
              VolumeEpoch volume_epoch, ReplicaOptions options = {});

  NodeId id() const { return id_; }
  /// vdl_ is written only on this replica's event shard, but session
  /// routing on other shards peeks it (ClientSession::PickReplica checks
  /// "has this replica ever applied a VDL"), so the accessor/writer pair
  /// goes through relaxed atomics. The peeked fact is one-way monotonic
  /// per replica incarnation, so a stale read only skips a replica that
  /// just became ready — never the reverse.
  Lsn vdl() const {
    return std::atomic_ref<Lsn>(const_cast<Lsn&>(vdl_))
        .load(std::memory_order_relaxed);
  }

  /// Entry point for the writer's replication stream (delivered over the
  /// simulated network by the cluster wiring).
  void OnReplicationEvent(const engine::ReplicationEvent& event);

  /// Snapshot read anchored at the replica's VDL.
  void Get(const std::string& key,
           std::function<void(Result<std::string>)> cb);

  /// Runs `fn(true)` once this replica's VDL has reached `min_lsn`
  /// (immediately if it already has); parks otherwise and drains on VDL
  /// advances from the stream. `fn(false)` fires after
  /// anchor_wait_timeout (or on crash) — session consistency's escape
  /// hatch to the writer.
  void RunAtAnchor(Lsn min_lsn, std::function<void(bool)> fn);

  /// Read-your-writes read (§3.3 "read views anchor at points equivalent
  /// to writer-side points"): waits for vdl >= min_lsn, then reads.
  /// Delivers Unavailable if the anchor wait times out.
  void GetAtAnchor(const std::string& key, Lsn min_lsn,
                   std::function<void(Result<std::string>)> cb);

  /// Anchored range scan; same wait/fallback contract as GetAtAnchor.
  void ScanAtAnchor(
      const std::string& lo, const std::string& hi, size_t limit,
      Lsn min_lsn,
      std::function<void(
          Result<std::vector<std::pair<std::string, std::string>>>)>
          cb);

  /// Opens a long-running read view pinned at the current VDL. Until
  /// UnpinView, it holds this replica's MinReadPoint — and therefore the
  /// fleet-wide PGMRPL at the writer — at or below the pin, stalling
  /// version GC at the segments (§3.4). Returns 0 if the replica is not
  /// ready.
  uint64_t PinView();
  void UnpinView(uint64_t handle);
  size_t pinned_view_count() const { return pinned_views_.size(); }

  /// Snapshot range scan anchored at the replica's VDL.
  void Scan(const std::string& lo, const std::string& hi, size_t limit,
            std::function<void(
                Result<std::vector<std::pair<std::string, std::string>>>)>
                cb);

  /// Lowest LSN any request on this replica may still read.
  Lsn MinReadPoint() const;

  /// Refreshes geometry after membership changes (pushed by the cluster).
  void UpdateGeometry(const quorum::VolumeGeometry& geometry,
                      VolumeEpoch volume_epoch);

  /// Wires the periodic read-point report; the callback runs at the
  /// writer after network delivery (feeds ObserveReplicaReadPoint).
  void SetReadPointReporter(std::function<void(Lsn)> reporter) {
    reporter_ = std::move(reporter);
  }

  void Start();
  void OnCrash() override;
  void OnRestart() override {}

  const ReplicaStats& stats() const { return stats_; }
  engine::BufferCache& cache() { return *cache_; }
  engine::StorageDriver* driver() { return driver_.get(); }
  Histogram& read_latency() { return read_latency_; }
  /// Ship-to-apply latency of replication stream events (§3.3 "replicas
  /// consume the redo stream asynchronously"); the sim-time analogue of
  /// the paper's sub-20ms replica lag.
  Histogram& replica_lag() { return replica_lag_; }

 private:
  /// All vdl_ writes go through here (see vdl() above); same-shard reads
  /// may still touch the plain member — they are sequenced with the store.
  void StoreVdl(Lsn vdl) {
    std::atomic_ref<Lsn>(vdl_).store(vdl, std::memory_order_relaxed);
  }
  void WithPage(BlockId block,
                std::function<void(Result<storage::Page*>)> cb);
  storage::Page* CachedPage(BlockId block);
  void ApplyMtr(const std::vector<log::RedoRecord>& records);
  void ResolveCommitScn(TxnId writer_txn,
                        std::function<void(std::optional<Scn>)> cb);
  void ResolveVisible(const std::string& key, txn::RowVersion version,
                      txn::ReadView view, bool from_storage,
                      std::function<void(Result<std::string>)> cb,
                      int depth);
  void ReadLeafFromStorage(const std::string& key, txn::ReadView view,
                           std::function<void(Result<std::string>)> cb);
  void ScanResolve(
      std::vector<std::pair<std::string, std::string>> raw, size_t index,
      txn::ReadView view,
      std::vector<std::pair<std::string, std::string>> acc,
      std::function<void(
          Result<std::vector<std::pair<std::string, std::string>>>)>
          cb);
  void ReportLoop();
  void SeedHighWaterMarks();
  Lsn ClampToGroup(BlockId block, Lsn read_lsn) const;
  void CheckStreamContinuity(const engine::ReplicationEvent& event);
  void DrainAnchorWaiters();
  void FailAnchorWaiters();

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  AzId az_;
  NodeId writer_;
  ReplicaOptions options_;
  bool running_ = false;

  std::unique_ptr<engine::StorageDriver> driver_;
  std::unique_ptr<engine::BufferCache> cache_;
  std::unique_ptr<engine::BTree> btree_;
  txn::TxnManager txns_;

  Lsn vdl_ = kInvalidLsn;
  /// Replication-stream continuity tracking (writer + last seq seen).
  NodeId stream_source_ = kInvalidNode;
  uint64_t stream_seq_ = 0;
  /// Parked anchored reads keyed by the VDL they wait for. The shared
  /// flag arbitrates between the drain path and the timeout event.
  struct AnchorWaiter {
    std::function<void(bool)> fn;
    SimTime parked_at = 0;
    bool fired = false;
  };
  std::multimap<Lsn, std::shared_ptr<AnchorWaiter>> anchor_waiters_;
  /// Long-running pinned read views (PGMRPL pressure).
  uint64_t next_pin_handle_ = 1;
  std::map<uint64_t, txn::ReadView> pinned_views_;
  /// Highest record LSN seen per protection group (stream + probes); a
  /// block read is clamped to its group's mark, because an LSN in the
  /// global space may exceed the group's own chain position.
  std::map<ProtectionGroupId, Lsn> pg_high_water_;
  std::function<void(Lsn)> reporter_;
  std::map<BlockId,
           std::vector<std::function<void(Result<storage::Page*>)>>>
      pending_fetches_;

  ReplicaStats stats_;
  Histogram read_latency_;
  Histogram replica_lag_;
};

}  // namespace aurora::replica
