#include "src/replica/read_replica.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace aurora::replica {

namespace {
struct ReadMetrics {
  metrics::Counter* anchored;
  metrics::Counter* anchor_waits;
  metrics::Counter* anchor_timeouts;
  metrics::Counter* stream_gaps;
  metrics::Counter* gap_cache_drops;
  metrics::Gauge* pinned_views;
  Histogram* anchor_wait_us;
};
ReadMetrics& M() {
  static ReadMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return ReadMetrics{r.GetCounter("aurora.read.anchored"),
                       r.GetCounter("aurora.read.anchor_waits"),
                       r.GetCounter("aurora.read.anchor_timeouts"),
                       r.GetCounter("aurora.read.stream_gaps"),
                       r.GetCounter("aurora.read.gap_cache_drops"),
                       r.GetGauge("aurora.read.pinned_views"),
                       r.GetHistogram("aurora.read.anchor_wait_us")};
  }();
  return m;
}
}  // namespace

ReadReplica::ReadReplica(sim::Simulator* sim, sim::Network* network,
                         NodeId id, AzId az, storage::NodeResolver resolver,
                         NodeId writer,
                         const quorum::VolumeGeometry& geometry,
                         VolumeEpoch volume_epoch, ReplicaOptions options)
    : sim_(sim),
      network_(network),
      id_(id),
      az_(az),
      writer_(writer),
      options_(options) {
  network_->RegisterNode(id_, az_, this);
  cache_ = std::make_unique<engine::BufferCache>(options_.cache_pages);
  driver_ = std::make_unique<engine::StorageDriver>(
      sim_, network_, id_, std::move(resolver), options_.driver);
  driver_->SetGeometry(geometry, volume_epoch);
  btree_ = std::make_unique<engine::BTree>(
      options_.btree,
      [this](BlockId block, std::function<void(Result<storage::Page*>)> f) {
        WithPage(block, std::move(f));
      },
      [this](BlockId block) { return CachedPage(block); });
}

void ReadReplica::Start() {
  if (running_) return;
  running_ = true;
  driver_->Start();
  SeedHighWaterMarks();
  ReportLoop();
}

void ReadReplica::SeedHighWaterMarks() {
  // The replica attaches mid-stream: probe each group's segments so reads
  // of data written before attach know the group's chain position.
  for (const auto& pg : driver_->geometry().pgs()) {
    for (const auto& member : pg.AllMembers()) {
      driver_->ProbeSegmentState(
          member, [this, pg_id = pg.pg()](
                      storage::SegmentStateResponse response) {
            if (!response.status.ok() || !response.hydrated) return;
            Lsn& mark = pg_high_water_[pg_id];
            mark = std::max(mark, response.scl);
          });
    }
  }
}

Lsn ReadReplica::ClampToGroup(BlockId block, Lsn read_lsn) const {
  auto pg = driver_->geometry().PgForBlock(block);
  if (!pg.ok()) return read_lsn;
  auto it = pg_high_water_.find(*pg);
  if (it == pg_high_water_.end()) return read_lsn;
  return std::min(read_lsn, it->second);
}

void ReadReplica::OnCrash() {
  running_ = false;
  if (driver_) driver_->Stop();
  if (cache_) cache_->Clear();
  pending_fetches_.clear();
  FailAnchorWaiters();
  pinned_views_.clear();
  AURORA_GAUGE_SET(M().pinned_views, 0);
  txns_ = txn::TxnManager();
  StoreVdl(kInvalidLsn);
  stream_source_ = kInvalidNode;
  stream_seq_ = 0;
}

void ReadReplica::UpdateGeometry(const quorum::VolumeGeometry& geometry,
                                 VolumeEpoch volume_epoch) {
  driver_->SetGeometry(geometry, volume_epoch);
}

storage::Page* ReadReplica::CachedPage(BlockId block) {
  return cache_ ? cache_->Find(block) : nullptr;
}

void ReadReplica::WithPage(BlockId block,
                           std::function<void(Result<storage::Page*>)> cb) {
  if (storage::Page* page = CachedPage(block); page != nullptr) {
    cb(page);
    return;
  }
  cache_->CountMiss();
  auto [it, inserted] = pending_fetches_.try_emplace(block);
  it->second.push_back(std::move(cb));
  if (!inserted) return;
  driver_->ReadBlock(block, ClampToGroup(block, vdl_), MinReadPoint(),
                     [this, block](Result<storage::Page> page) {
                       auto waiters = pending_fetches_.extract(block);
                       if (waiters.empty()) return;
                       if (!page.ok()) {
                         for (auto& w : waiters.mapped()) w(page.status());
                         return;
                       }
                       storage::Page* cached =
                           cache_->Insert(std::move(*page), vdl_);
                       for (auto& w : waiters.mapped()) {
                         storage::Page* p = cache_->Find(block);
                         w(p != nullptr ? p : cached);
                       }
                     });
}

// ---------------------------------------------------------------------------
// Replication stream application (§3.2, §3.3)
// ---------------------------------------------------------------------------

void ReadReplica::OnReplicationEvent(const engine::ReplicationEvent& event) {
  if (!running_) return;
  if (event.shipped_at > 0) {
    const SimDuration lag = sim_->Now() - event.shipped_at;
    replica_lag_.Record(lag);
    if (AURORA_METRICS_ON()) {
      metrics::Registry::Global()
          .GetHistogram("replica.stream_lag_us")
          ->Record(lag);
    }
  }
  CheckStreamContinuity(event);
  switch (event.type) {
    case engine::ReplicationEvent::Type::kMtr:
      ApplyMtr(event.mtr);
      break;
    case engine::ReplicationEvent::Type::kVdlUpdate:
      if (event.vdl > vdl_) {
        StoreVdl(event.vdl);
        DrainAnchorWaiters();
      }
      break;
    case engine::ReplicationEvent::Type::kCommit:
      // Commit notification (§3.4): maintain transaction commit history.
      txns_.InstallCommitNotification(event.txn, event.scn);
      break;
  }
}

void ReadReplica::CheckStreamContinuity(
    const engine::ReplicationEvent& event) {
  if (event.seq == 0) return;  // unstamped (legacy/test) stream
  const bool new_stream = event.source != stream_source_;
  const bool gap = !new_stream && event.seq != stream_seq_ + 1;
  // A writer switch counts as a break too once we had a stream: events
  // the old writer shipped after our last-seen seq are unaccounted for.
  const bool broke = gap || (new_stream && stream_source_ != kInvalidNode);
  stream_source_ = event.source;
  stream_seq_ = event.seq;
  if (!broke) return;
  stats_.stream_gaps++;
  AURORA_COUNT(M().stream_gaps, 1);
  if (!options_.strict_stream_continuity) return;
  // Conservative recovery: any cached page may be silently stale (its
  // missed records would only surface as a chain mismatch when a LATER
  // record for the same block arrives). Drop the cache so storage —
  // which has the durable truth — serves the next reads.
  if (cache_ && cache_->Size() > 0) {
    stats_.gap_cache_drops++;
    AURORA_COUNT(M().gap_cache_drops, 1);
    cache_->Clear();
  }
}

void ReadReplica::ApplyMtr(const std::vector<log::RedoRecord>& records) {
  // MTR chunks are applied atomically to the subset of blocks in the
  // cache (§3.2). Within one simulator event, no read can interleave, so
  // applying record-by-record here IS atomic from the readers' view.
  stats_.mtrs_applied++;
  for (const auto& record : records) {
    if (record.block == kInvalidBlock) continue;
    Lsn& mark = pg_high_water_[record.pg];
    mark = std::max(mark, record.lsn);
    storage::Page* page = cache_ ? cache_->Find(record.block) : nullptr;
    if (page == nullptr) {
      // Redo for uncached blocks is discarded; shared storage serves them
      // on demand (§3.2).
      stats_.records_discarded_uncached++;
      continue;
    }
    if (page->page_lsn != record.prev_lsn_block) {
      // Block-chain mismatch (e.g. the replica attached mid-stream or
      // missed events while crashed): the cached copy is stale and must
      // be re-read from storage.
      cache_->Erase(record.block);
      stats_.pages_invalidated++;
      continue;
    }
    Status st = ApplyRedoPayload(page, record.payload.view(), record.lsn);
    if (!st.ok()) {
      cache_->Erase(record.block);
      stats_.pages_invalidated++;
      continue;
    }
    stats_.records_applied++;
  }
}

// ---------------------------------------------------------------------------
// Reads (§3.4)
// ---------------------------------------------------------------------------

Lsn ReadReplica::MinReadPoint() const {
  const Lsn open_min = txns_.MinOpenReadLsn();
  if (open_min != kInvalidLsn) return std::min(open_min, vdl_);
  return vdl_;
}

// ---------------------------------------------------------------------------
// Anchored reads (session consistency) & pinned views
// ---------------------------------------------------------------------------

void ReadReplica::RunAtAnchor(Lsn min_lsn, std::function<void(bool)> fn) {
  if (!running_) {
    fn(false);
    return;
  }
  if (vdl_ != kInvalidLsn && vdl_ >= min_lsn) {
    fn(true);
    return;
  }
  stats_.anchor_waits++;
  AURORA_COUNT(M().anchor_waits, 1);
  auto waiter = std::make_shared<AnchorWaiter>();
  waiter->fn = std::move(fn);
  waiter->parked_at = sim_->Now();
  anchor_waiters_.emplace(min_lsn, waiter);
  sim_->Schedule(options_.anchor_wait_timeout, [this, waiter]() {
    if (waiter->fired) return;
    waiter->fired = true;
    stats_.anchor_timeouts++;
    AURORA_COUNT(M().anchor_timeouts, 1);
    waiter->fn(false);
  });
}

void ReadReplica::DrainAnchorWaiters() {
  while (!anchor_waiters_.empty() &&
         anchor_waiters_.begin()->first <= vdl_) {
    auto waiter = anchor_waiters_.begin()->second;
    anchor_waiters_.erase(anchor_waiters_.begin());
    if (waiter->fired) continue;
    waiter->fired = true;
    AURORA_OBSERVE(M().anchor_wait_us, sim_->Now() - waiter->parked_at);
    waiter->fn(true);
  }
}

void ReadReplica::FailAnchorWaiters() {
  auto parked = std::move(anchor_waiters_);
  anchor_waiters_.clear();
  for (auto& [lsn, waiter] : parked) {
    if (waiter->fired) continue;
    waiter->fired = true;
    waiter->fn(false);
  }
}

void ReadReplica::GetAtAnchor(
    const std::string& key, Lsn min_lsn,
    std::function<void(Result<std::string>)> cb) {
  stats_.anchored_gets++;
  AURORA_COUNT(M().anchored, 1);
  RunAtAnchor(min_lsn, [this, key, cb = std::move(cb)](bool ready) mutable {
    if (!ready) {
      cb(Status::Unavailable("replica did not reach the read anchor"));
      return;
    }
    Get(key, std::move(cb));
  });
}

void ReadReplica::ScanAtAnchor(
    const std::string& lo, const std::string& hi, size_t limit, Lsn min_lsn,
    std::function<
        void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  AURORA_COUNT(M().anchored, 1);
  RunAtAnchor(min_lsn,
              [this, lo, hi, limit, cb = std::move(cb)](bool ready) mutable {
                if (!ready) {
                  cb(Status::Unavailable(
                      "replica did not reach the read anchor"));
                  return;
                }
                Scan(lo, hi, limit, std::move(cb));
              });
}

uint64_t ReadReplica::PinView() {
  if (!running_ || vdl_ == kInvalidLsn) return 0;
  const uint64_t handle = next_pin_handle_++;
  pinned_views_.emplace(handle, txns_.OpenReadView(vdl_));
  AURORA_GAUGE_SET(M().pinned_views,
                   static_cast<int64_t>(pinned_views_.size()));
  return handle;
}

void ReadReplica::UnpinView(uint64_t handle) {
  auto it = pinned_views_.find(handle);
  if (it == pinned_views_.end()) return;
  txns_.CloseReadView(it->second);
  pinned_views_.erase(it);
  AURORA_GAUGE_SET(M().pinned_views,
                   static_cast<int64_t>(pinned_views_.size()));
}

void ReadReplica::ResolveCommitScn(
    TxnId writer_txn, std::function<void(std::optional<Scn>)> cb) {
  if (auto scn = txns_.CommitScnOf(writer_txn); scn.has_value()) {
    cb(scn);
    return;
  }
  // Fall back to the persistent status index in the shared B-tree
  // (handles commits from before this replica attached). Entries above
  // this replica's VDL are invisible here, which is exactly right: such
  // commits are not yet visible to this replica's read views either.
  btree_->GetEntry(
      engine::StatusKey(writer_txn),
      [this, writer_txn, cb = std::move(cb)](Result<std::string> raw) {
        if (!raw.ok()) {
          cb(std::nullopt);
          return;
        }
        auto scn = engine::DecodeU64Value(*raw);
        if (!scn.ok()) {
          cb(std::nullopt);
          return;
        }
        txns_.InstallCommitNotification(writer_txn, *scn);
        cb(*scn);
      });
}

void ReadReplica::ReadLeafFromStorage(
    const std::string& key, txn::ReadView view,
    std::function<void(Result<std::string>)> cb) {
  // Fallback path: the cached image ran ahead of this view's anchor and
  // undo was not available locally; re-read the leaf as of the anchor
  // directly from storage (bypassing the cache, which must keep the
  // newer image for the replication chain).
  stats_.storage_fallback_reads++;
  auto path = btree_->FindPathSync(key);
  BlockId leaf;
  if (path.ok()) {
    leaf = path->back();
  } else {
    cb(Status::Unavailable("replica fallback: path unavailable"));
    return;
  }
  driver_->ReadBlock(
      leaf, ClampToGroup(leaf, view.read_lsn()), MinReadPoint(),
      [this, key, view, cb = std::move(cb)](Result<storage::Page> page) {
        if (!page.ok()) {
          cb(page.status());
          return;
        }
        auto it = page->entries.find(key);
        if (it == page->entries.end()) {
          cb(Status::NotFound("key absent in snapshot"));
          return;
        }
        auto version = txn::DecodeRowVersion(it->second);
        if (!version.ok()) {
          cb(version.status());
          return;
        }
        ResolveVisible(key, std::move(*version), view, /*from_storage=*/true,
                       std::move(cb), 256);
      });
}

void ReadReplica::ResolveVisible(const std::string& key,
                                 txn::RowVersion version, txn::ReadView view,
                                 bool from_storage,
                                 std::function<void(Result<std::string>)> cb,
                                 int depth) {
  if (depth <= 0) {
    cb(Status::Internal("undo chain too deep"));
    return;
  }
  ResolveCommitScn(
      version.txn,
      [this, key, version = std::move(version), view, from_storage,
       cb = std::move(cb), depth](std::optional<Scn> scn) mutable {
        if (view.Sees(version.txn, scn.value_or(kInvalidLsn))) {
          if (version.deleted) {
            cb(Status::NotFound("deleted in snapshot"));
          } else {
            cb(std::move(version.value));
          }
          return;
        }
        if (version.undo.IsNull()) {
          cb(Status::NotFound("no visible version"));
          return;
        }
        const txn::UndoPtr undo = version.undo;
        WithPage(undo.block, [this, key, undo, view, from_storage,
                              cb = std::move(cb),
                              depth](Result<storage::Page*> page) mutable {
          if (page.ok()) {
            auto it = (*page)->entries.find(undo.key);
            if (it != (*page)->entries.end()) {
              auto entry = txn::DecodeUndoEntry(it->second);
              if (!entry.ok()) {
                cb(entry.status());
                return;
              }
              if (!entry->prev_exists) {
                cb(Status::NotFound("row did not exist in snapshot"));
                return;
              }
              ResolveVisible(key, entry->prev, view, from_storage,
                             std::move(cb), depth - 1);
              return;
            }
          }
          if (!from_storage) {
            // Undo not reachable locally (the entry's redo is above this
            // replica's VDL and the undo page is uncached): anchor the
            // whole read at storage instead.
            ReadLeafFromStorage(key, view, std::move(cb));
            return;
          }
          cb(Status::NotFound("undo unavailable in snapshot"));
        });
      });
}

void ReadReplica::Get(const std::string& key,
                      std::function<void(Result<std::string>)> cb) {
  stats_.gets++;
  if (!running_ || vdl_ == kInvalidLsn) {
    cb(Status::Unavailable("replica not ready"));
    return;
  }
  txn::ReadView view = txns_.OpenReadView(vdl_);
  const SimTime start = sim_->Now();
  const std::string internal_key = engine::DataKey(key);
  btree_->GetEntry(internal_key,
                   [this, internal_key, view, start, cb = std::move(cb)](
                            Result<std::string> raw) mutable {
    auto finish = [this, view, start, cb = std::move(cb)](
                      Result<std::string> result) {
      txns_.CloseReadView(view);
      read_latency_.Record(sim_->Now() - start);
      cb(std::move(result));
    };
    if (!raw.ok()) {
      finish(raw.status().IsAborted() ? Status::NotFound("key absent")
                                      : raw.status());
      return;
    }
    auto version = txn::DecodeRowVersion(*raw);
    if (!version.ok()) {
      finish(version.status());
      return;
    }
    ResolveVisible(internal_key, std::move(*version), view,
                   /*from_storage=*/false, std::move(finish), 256);
  });
}

void ReadReplica::Scan(
    const std::string& lo, const std::string& hi, size_t limit,
    std::function<
        void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  if (!running_ || vdl_ == kInvalidLsn) {
    cb(Status::Unavailable("replica not ready"));
    return;
  }
  txn::ReadView view = txns_.OpenReadView(vdl_);
  btree_->ScanEntries(
      engine::DataKey(lo), engine::DataKey(hi), limit,
      [this, view, cb = std::move(cb)](
          Result<std::vector<std::pair<std::string, std::string>>> raw) {
        if (!raw.ok()) {
          txns_.CloseReadView(view);
          cb(raw.status());
          return;
        }
        ScanResolve(std::move(*raw), 0, view, {},
                    [this, view, cb = std::move(cb)](
                        Result<std::vector<
                            std::pair<std::string, std::string>>> result) {
                      txns_.CloseReadView(view);
                      cb(std::move(result));
                    });
      });
}

void ReadReplica::ScanResolve(
    std::vector<std::pair<std::string, std::string>> raw, size_t index,
    txn::ReadView view, std::vector<std::pair<std::string, std::string>> acc,
    std::function<void(
        Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  if (index >= raw.size()) {
    cb(std::move(acc));
    return;
  }
  auto version = txn::DecodeRowVersion(raw[index].second);
  if (!version.ok()) {
    cb(version.status());
    return;
  }
  std::string internal_key = raw[index].first;
  ResolveVisible(
      internal_key, std::move(*version), view, /*from_storage=*/false,
      [this, raw = std::move(raw), index, view, acc = std::move(acc),
       internal_key, cb = std::move(cb)](Result<std::string> value) mutable {
        if (value.ok()) {
          acc.emplace_back(internal_key.substr(1), std::move(*value));
        } else if (!value.status().IsNotFound() &&
                   !value.status().IsTimedOut()) {
          cb(value.status());
          return;
        }
        ScanResolve(std::move(raw), index + 1, view, std::move(acc),
                    std::move(cb));
      },
      256);
}

void ReadReplica::ReportLoop() {
  if (!running_) return;
  // Report the minimum read point to the writer for PGMRPL (§3.4).
  if (reporter_) {
    const Lsn point = MinReadPoint();
    network_->Send(id_, writer_, 64,
                   [reporter = reporter_, point]() { reporter(point); });
  }
  sim_->Schedule(options_.report_interval, [this]() { ReportLoop(); });
}

}  // namespace aurora::replica
