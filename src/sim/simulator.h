// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's multi-AZ AWS testbed. All
// protocol components run as callbacks on a single virtual clock; identical
// seeds produce identical executions, which makes the failure-injection
// tests and the latency-shape benchmarks reproducible.
//
// Engine internals (DESIGN.md §8): events live in a slab of recycled slots
// (callback + trace digest), the ready queue is a binary heap over compact
// 24-byte (time, seq, slot, generation) keys, and EventId encodes the slot
// index plus a generation tag so Cancel() and liveness checks are O(1)
// array operations — no per-event hash-set bookkeeping, and heap sifts
// never move closures.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/callback.h"
#include "src/sim/trace.h"

namespace aurora::sim {

/// Identifies a scheduled event; usable with Cancel(). Encodes
/// (generation << 32) | (slot index + 1); the generation tag makes a stale
/// id (already fired or cancelled) a harmless no-op.
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded event loop over virtual microseconds.
///
/// Events at equal timestamps run in scheduling order (FIFO), which keeps
/// executions deterministic without artificial tie-breaking jitter.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator();

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at Now() + delay (delay >= 0). `label` names the
  /// schedule site in captured traces (must be a string literal or outlive
  /// the event); unlabeled events trace as "".
  EventId Schedule(SimDuration delay, SimCallback fn, const char* label = "");

  /// Schedules at an absolute virtual time (>= Now()).
  EventId ScheduleAt(SimTime when, SimCallback fn, const char* label = "");

  /// Best-effort cancellation; a no-op if already fired or unknown. The
  /// callback (and everything it captured) is destroyed immediately — a
  /// cancelled far-future event does not pin its captures until the heap
  /// entry surfaces.
  void Cancel(EventId id);

  /// Runs until the event queue is empty.
  void Run();

  /// Runs all events with timestamp <= deadline; clock lands on deadline.
  void RunUntil(SimTime deadline);

  /// Runs for `duration` of virtual time from Now().
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  /// Executes the single next event. Returns false if the queue is empty.
  bool Step();

  /// Number of scheduled events that will still fire (cancelled events are
  /// excluded, whether or not their heap entry has been reclaimed).
  size_t PendingEvents() const { return live_count_; }
  uint64_t ExecutedEvents() const { return executed_; }

  /// Running FNV-1a digest over every executed event (time + label), in
  /// execution order. Two runs with equal fingerprints executed the same
  /// event schedule; see Trace::MixFingerprint. Always maintained (one
  /// short hash per event), so any pair of runs can be compared after the
  /// fact without having armed anything up front.
  uint64_t ScheduleFingerprint() const { return fingerprint_; }

  // -- Trace capture & replay verification (src/sim/trace.h) --------------
  //
  // StartTrace appends every subsequently executed event to `out`;
  // BeginReplayCheck verifies each executed event against a previously
  // captured trace instead. A trace never drives execution — closures are
  // not serializable — the caller re-runs the same seeded scenario and the
  // simulator proves the schedules identical (or reports the first
  // divergence). Recording and replay-checking may be active together
  // (e.g. re-capturing while verifying).

  /// Starts appending executed events to `out` (not owned; must outlive
  /// recording). Passing nullptr stops recording.
  void StartTrace(Trace* out) { trace_out_ = out; }
  void StopTrace() { trace_out_ = nullptr; }

  /// Starts verifying executed events against `trace` (not owned). Each
  /// executed event is compared to the next recorded one; the first
  /// mismatch (or running past the recorded stream) is captured once.
  void BeginReplayCheck(const Trace* trace) {
    replay_ = trace;
    replay_cursor_ = 0;
    replay_divergence_.clear();
  }
  void EndReplayCheck() { replay_ = nullptr; }

  /// True once a replay check saw a mismatch. Events beyond the recorded
  /// stream's end are NOT a divergence (the capturing run may have stopped
  /// mid-scenario); a shorter replay shows up as fingerprint inequality.
  bool ReplayDiverged() const { return !replay_divergence_.empty(); }
  /// Human-readable first divergence ("" while none).
  const std::string& ReplayDivergence() const { return replay_divergence_; }

  /// Root generator; actors fork children from it for independent streams.
  Rng& rng() { return rng_; }

  /// Installs a post-event inspector: `fn` runs after every `every_n`-th
  /// executed event (n >= 1). The invariant auditor hangs off this hook so
  /// it can observe the cluster at real event boundaries — between any two
  /// events the system must be in a protocol-legal state. The inspector
  /// must not schedule events or mutate actor state.
  void SetInspector(uint64_t every_n, std::function<void()> fn) {
    inspect_every_ = every_n == 0 ? 1 : every_n;
    inspector_ = std::move(fn);
  }
  void ClearInspector() { inspector_ = nullptr; }

  // -- Introspection for engine tests (not part of the public contract) ---
  /// Heap entries currently held, live and tombstoned alike.
  size_t HeapEntriesForTest() const { return heap_.size(); }
  /// Tombstoned (cancelled but not yet reclaimed) heap entries.
  size_t DeadHeapEntriesForTest() const { return dead_in_heap_; }

 private:
  /// Slab slot: callback plus the trace identity of the scheduled event.
  /// The digest is precomputed at schedule time (the fire time is known
  /// then), so the per-execution trace cost is one integer mix instead of
  /// an FNV pass over the label string.
  struct Slot {
    SimCallback fn;
    uint64_t digest = 0;
    const char* label = "";   // string literal, never owned
    uint32_t generation = 0;  // bumped on every release; tags EventId
    uint32_t next_free = 0;   // freelist link (index + 1; 0 = end)
  };

  /// Compact heap key: 24 bytes, no closure movement during sifts.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;    // FIFO tie-break for equal timestamps
    uint32_t slot;
    uint32_t generation;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  uint32_t AllocSlot();
  /// Destroys the slot's callback, bumps the generation (invalidating any
  /// outstanding EventId / heap entry), and returns it to the freelist.
  void ReleaseSlot(uint32_t index);
  bool SlotLive(const HeapEntry& e) const {
    return slots_[e.slot].generation == e.generation;
  }
  /// Rebuilds the heap without tombstones once they dominate it.
  void CompactHeap();
  /// Pops tombstones off the heap top so front() is the next live event.
  void PruneDeadTop();

  /// Trace/verify one executed event (called from Step before `fn` runs;
  /// the fingerprint mix itself stays inline in Step).
  void ObserveExecuted(SimTime at, const char* label, uint64_t digest);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::vector<Slot> slots_;
  uint32_t free_head_ = 0;  // index + 1; 0 = empty freelist
  size_t live_count_ = 0;
  /// Min-heap via std::push_heap/std::pop_heap over a plain vector.
  std::vector<HeapEntry> heap_;
  /// Cancelled entries still parked in the heap. Compaction triggers when
  /// they outnumber the live half.
  size_t dead_in_heap_ = 0;
  Rng rng_;
  uint64_t inspect_every_ = 1;
  std::function<void()> inspector_;

  uint64_t fingerprint_ = 0;
  Trace* trace_out_ = nullptr;
  const Trace* replay_ = nullptr;
  size_t replay_cursor_ = 0;
  std::string replay_divergence_;
};

}  // namespace aurora::sim
