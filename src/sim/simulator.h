// Deterministic discrete-event simulator with an optional sharded
// parallel engine.
//
// This is the substrate that replaces the paper's multi-AZ AWS testbed. All
// protocol components run as callbacks on a virtual clock; identical seeds
// produce identical executions, which makes the failure-injection tests and
// the latency-shape benchmarks reproducible.
//
// Engine internals (DESIGN.md §8): events live in a slab of recycled slots
// (callback + trace digest), the ready queue is a binary heap over compact
// 24-byte (time, seq, slot, generation) keys, and EventId encodes the slot
// index plus a generation tag so Cancel() and liveness checks are O(1)
// array operations — no per-event hash-set bookkeeping, and heap sifts
// never move closures.
//
// Sharded mode (DESIGN.md §9): ConfigureShards(n) partitions the event
// population into n shards, each with its own slab + heap + clock. Events
// carry a canonical (time, stamp) key where stamp = (scheduling context
// << 48) | per-context counter; the canonical total order over these keys
// is what both the serial oracle (Step/Run/RunUntil, which always executes
// the globally minimal key) and the parallel engine (RunSharded: conserva-
// tive time windows bounded by the pairwise lookahead matrix, batched
// per-(src,dst) outboxes published once per window at the barrier,
// canonical merge of per-shard execution logs) follow, so
// serial and parallel runs produce identical schedule fingerprints for any
// worker count. With a single shard the engine is bit-identical to the
// classic unsharded engine: same stamps, same order, same EventIds.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/callback.h"
#include "src/sim/trace.h"

namespace aurora::sim {

/// Identifies a scheduled event; usable with Cancel(). Encodes
/// (generation << 32) | (shard tag << 24) | (slot index + 1); the
/// generation tag makes a stale id (already fired or cancelled) a harmless
/// no-op. In unsharded mode the shard tag is 0, so ids are bit-identical
/// to the pre-sharding encoding.
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Identifies an event shard (a worker-owned slab + heap + clock). Derived
/// from the event's target actor at schedule time — the Network maps nodes
/// to shards, so a message delivery executes on its destination's shard.
using ShardKey = uint32_t;
/// "Not executing on any worker shard" (coordinator / external context).
inline constexpr ShardKey kShardNone = 0xffffffffu;
/// Shard-tag byte reserved for the global (barrier-serialized) queue.
inline constexpr uint32_t kGlobalShardTag = 0xff;
/// Worker shards must fit the EventId shard-tag byte below the global tag.
inline constexpr uint32_t kMaxShards = 200;

/// Event loop over virtual microseconds.
///
/// Events at equal timestamps run in scheduling order (FIFO), which keeps
/// executions deterministic without artificial tie-breaking jitter. In
/// sharded mode the FIFO tie-break is per scheduling context (see file
/// comment); with one shard that degenerates to the classic global FIFO.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator();

  /// Virtual now, as seen by the calling context: inside an event this is
  /// the executing shard's clock; outside it is the coordinator clock (the
  /// maximum time any shard has reached).
  SimTime Now() const;

  /// Schedules `fn` to run at Now() + delay (delay >= 0) on the calling
  /// context's shard (events inherit their scheduler's shard; external
  /// callers target shard 0 unless inside a ShardScope). `label` names the
  /// schedule site in captured traces (must be a string literal or outlive
  /// the event); unlabeled events trace as "".
  EventId Schedule(SimDuration delay, SimCallback fn, const char* label = "");

  /// Schedules at an absolute virtual time (>= Now()).
  EventId ScheduleAt(SimTime when, SimCallback fn, const char* label = "");

  /// Schedules onto a specific shard. Same-shard calls are the plain
  /// Schedule fast path. Cross-shard calls require delay >= lookahead (the
  /// conservative-synchronization contract); during a parallel window they
  /// travel via the destination shard's mailbox and return kInvalidEvent
  /// (cross-shard events cannot be cancelled).
  EventId ScheduleOn(ShardKey shard, SimDuration delay, SimCallback fn,
                     const char* label = "");

  /// Schedules a global event: it executes on the coordinator at an exact-
  /// key barrier with every worker shard quiesced up to its (time, stamp)
  /// key, so it may touch cross-shard state (node liveness, partitions)
  /// race-free and deterministically. With zero or one worker shards this
  /// is plain Schedule (bit-identical legacy behavior).
  EventId ScheduleGlobal(SimDuration delay, SimCallback fn,
                         const char* label = "");
  EventId ScheduleGlobalAt(SimTime when, SimCallback fn,
                           const char* label = "");

  /// Best-effort cancellation; a no-op if already fired or unknown. The
  /// callback (and everything it captured) is destroyed immediately — a
  /// cancelled far-future event does not pin its captures until the heap
  /// entry surfaces. During a parallel window only the owning shard may
  /// cancel its own events.
  void Cancel(EventId id);

  /// Runs until the event queue is empty (canonical serial order).
  void Run();

  /// Runs all events with timestamp <= deadline; clock lands on deadline.
  void RunUntil(SimTime deadline);

  /// Runs for `duration` of virtual time from Now().
  void RunFor(SimDuration duration) { RunUntil(Now() + duration); }

  /// Executes the single next event in canonical order. Returns false if
  /// the queue is empty.
  bool Step();

  // -- Sharded parallel engine (DESIGN.md §9) -----------------------------

  /// Splits the engine into `count` worker shards plus a global queue.
  /// Must be called before anything is scheduled. count == 1 keeps the
  /// execution bit-identical to the unsharded engine while exercising the
  /// sharded machinery (the determinism oracle for parallel mode).
  void ConfigureShards(uint32_t count);
  bool Sharded() const { return sharded_; }
  uint32_t ShardCount() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Conservative lookahead: the minimum cross-shard scheduling delay
  /// (derive from Network::MinCrossNodeLatency). Windows span
  /// [W, W + lookahead); larger lookahead means fewer barriers. Resets any
  /// pairwise matrix back to this uniform bound.
  void SetLookahead(SimDuration lookahead);
  SimDuration Lookahead() const { return lookahead_; }

  /// Pairwise lookahead matrix (DESIGN.md §9): the guaranteed minimum
  /// delay of any cross-shard ScheduleOn from `src` to `dst`. Entries
  /// default to the scalar lookahead; raising an entry above it is legal
  /// only if every schedule path between the pair really observes the
  /// larger bound (the Network derives entries from per-link-class latency
  /// floors, which its sends honor by construction). A shard's window
  /// bound becomes `min over dst of (own next key + L(src, dst))` taken
  /// across all pending shards, so shards whose mutual traffic is slow —
  /// e.g. cross-AZ-only storage pairs — stop throttling the window to the
  /// tightest link in the whole fleet. Barrier-only; src != dst.
  void SetPairwiseLookahead(ShardKey src, ShardKey dst, SimDuration bound);
  SimDuration PairwiseLookahead(ShardKey src, ShardKey dst) const;

  /// The minimum safe cross-shard delay from the calling context's shard
  /// to `dst` — what a cross-shard hop (e.g. the object store's home-shard
  /// hop) must use instead of the scalar Lookahead() once a pairwise
  /// matrix is active. Falls back to the scalar for context-less callers
  /// and same-shard targets.
  SimDuration LookaheadTo(ShardKey dst) const;

  /// Window-engine efficiency counters (mirrored into the metrics
  /// registry as aurora.sim.* when metrics are enabled). `windows` counts
  /// executed parallel windows (== barriers); `mailbox_batches` counts
  /// non-empty (src, dst) outbox arenas flushed at barriers and
  /// `mailbox_msgs` the cross-shard events they carried.
  struct EngineStats {
    uint64_t windows = 0;
    uint64_t mailbox_batches = 0;
    uint64_t mailbox_msgs = 0;
  };
  const EngineStats& engine_stats() const { return engine_stats_; }
  void ResetEngineStats() { engine_stats_ = EngineStats{}; }

  /// Runs all events with timestamp <= deadline through the windowed
  /// engine with `threads` workers (clamped to [1, ShardCount()]). The
  /// result — schedule fingerprint, executed count, per-actor state — is
  /// identical for every thread count, and identical to serial
  /// RunUntil(deadline) on the same sharded simulator. Not reentrant; must
  /// not be called from inside an event.
  void RunSharded(SimTime deadline, int threads);
  void RunShardedFor(SimDuration duration, int threads) {
    RunSharded(Now() + duration, threads);
  }

  /// Shard of the currently executing event, or kShardNone when called
  /// outside worker-shard execution (coordinator, global event, external).
  ShardKey ExecutingShard() const;

  /// True while a parallel window is in flight (workers executing).
  bool WorkersActive() const {
    return workers_active_.load(std::memory_order_relaxed);
  }

  /// Redirects context-less scheduling (external callers, lifecycle
  /// listeners running in global events) to a specific shard for the
  /// scope's lifetime, so actor setup/rearm timers land on the actor's
  /// shard. Coordinator-context only; nestable; a no-op when targeting
  /// shard 0 (the default).
  class ShardScope {
   public:
    ShardScope(Simulator* sim, ShardKey shard);
    ~ShardScope();
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    Simulator* sim_;
    int64_t saved_;
  };

  /// Number of scheduled events that will still fire (cancelled events are
  /// excluded, whether or not their heap entry has been reclaimed).
  size_t PendingEvents() const;
  uint64_t ExecutedEvents() const { return executed_; }

  /// Running FNV-1a digest over every executed event (time + label), in
  /// canonical execution order. Two runs with equal fingerprints executed
  /// the same event schedule; see Trace::MixFingerprint. Always maintained
  /// (one short hash per event), so any pair of runs can be compared after
  /// the fact without having armed anything up front. Parallel windows mix
  /// at the barrier, in canonical merge order — equal to the serial order.
  uint64_t ScheduleFingerprint() const { return fingerprint_; }

  // -- Trace capture & replay verification (src/sim/trace.h) --------------
  //
  // StartTrace appends every subsequently executed event to `out`;
  // BeginReplayCheck verifies each executed event against a previously
  // captured trace instead. A trace never drives execution — closures are
  // not serializable — the caller re-runs the same seeded scenario and the
  // simulator proves the schedules identical (or reports the first
  // divergence). Recording and replay-checking may be active together
  // (e.g. re-capturing while verifying). In parallel mode both observe the
  // canonical merge order at window barriers, so captures are comparable
  // across serial and parallel runs.

  /// Starts appending executed events to `out` (not owned; must outlive
  /// recording). Passing nullptr stops recording.
  void StartTrace(Trace* out) { trace_out_ = out; }
  void StopTrace() { trace_out_ = nullptr; }

  /// Starts verifying executed events against `trace` (not owned). Each
  /// executed event is compared to the next recorded one; the first
  /// mismatch (or running past the recorded stream) is captured once.
  void BeginReplayCheck(const Trace* trace) {
    replay_ = trace;
    replay_cursor_ = 0;
    replay_divergence_.clear();
  }
  void EndReplayCheck() { replay_ = nullptr; }

  /// True once a replay check saw a mismatch. Events beyond the recorded
  /// stream's end are NOT a divergence (the capturing run may have stopped
  /// mid-scenario); a shorter replay shows up as fingerprint inequality.
  bool ReplayDiverged() const { return !replay_divergence_.empty(); }
  /// Human-readable first divergence ("" while none).
  const std::string& ReplayDivergence() const { return replay_divergence_; }

  /// Root generator; actors fork children from it for independent streams.
  Rng& rng() { return rng_; }

  /// Installs a post-event inspector: `fn` runs after every `every_n`-th
  /// executed event (n >= 1). The invariant auditor hangs off this hook so
  /// it can observe the cluster at real event boundaries — between any two
  /// events the system must be in a protocol-legal state. The inspector
  /// must not schedule events or mutate actor state. In parallel mode the
  /// inspector runs at window barriers instead (between windows the system
  /// is likewise quiesced); cross-shard inspection mid-window would race.
  void SetInspector(uint64_t every_n, std::function<void()> fn) {
    inspect_every_ = every_n == 0 ? 1 : every_n;
    inspector_ = std::move(fn);
  }
  void ClearInspector() { inspector_ = nullptr; }

  // -- Introspection for engine tests (not part of the public contract) ---
  /// Heap entries currently held, live and tombstoned alike (all shards).
  size_t HeapEntriesForTest() const;
  /// Tombstoned (cancelled but not yet reclaimed) heap entries.
  size_t DeadHeapEntriesForTest() const;

 private:
  /// Slab slot: callback plus the trace identity of the scheduled event.
  /// The digest is precomputed at schedule time (the fire time is known
  /// then), so the per-execution trace cost is one integer mix instead of
  /// an FNV pass over the label string.
  struct Slot {
    SimCallback fn;
    uint64_t digest = 0;
    const char* label = "";   // string literal, never owned
    uint32_t generation = 0;  // bumped on every release; tags EventId
    uint32_t next_free = 0;   // freelist link (index + 1; 0 = end)
  };

  /// Compact heap key: 24 bytes, no closure movement during sifts.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;    // canonical stamp: (context << 48) | counter
    uint32_t slot;
    uint32_t generation;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Canonical order key; windows are bounded by a key, not just a time,
  /// so a global event splits a window exactly at its own stamp.
  struct HeapKey {
    SimTime time;
    uint64_t seq;
    bool operator<(const HeapKey& o) const {
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  /// One executed event in a shard's window log; merged canonically (by
  /// key across shard heads, preserving per-shard execution order) into
  /// the fingerprint/trace stream at the barrier.
  struct ExecRecord {
    SimTime time;
    uint64_t seq;
    uint64_t digest;
    const char* label;
  };

  /// Cross-shard event in flight: accumulated in the sender's per-
  /// destination outbox arena, integrated into the destination heap at the
  /// next barrier. Only the low stamp-counter bits travel; the sender's
  /// (context << 48) stamp base is OR'd back in per batch at the flush,
  /// and the digest is computed on insertion, same as any schedule.
  struct Mail {
    SimTime time;
    uint64_t counter;  // per-context stamp counter (base applied at flush)
    const char* label;
    SimCallback fn;
  };

  /// One event shard: slab + heap + clock + stamp counter. Cross-shard
  /// sends batch into `outbox[dst]` — written only by the worker that owns
  /// this shard's window, so no per-message lock — and are published once
  /// per window with a single release store of `out_published`, which the
  /// coordinator's barrier drain acquires. The global queue reuses the
  /// same structure (outboxes unused: global-event sends insert directly
  /// while workers are quiesced).
  struct Shard {
    uint32_t id = 0;         // worker index, or kGlobalShardTag
    uint64_t stamp_base = 0; // (context id << 48), precomputed
    SimTime now = 0;
    uint64_t counter = 0;    // per-context stamp counter
    std::vector<Slot> slots;
    uint32_t free_head = 0;  // index + 1; 0 = empty freelist
    size_t live = 0;
    std::vector<HeapEntry> heap;
    size_t dead_in_heap = 0;
    std::vector<ExecRecord> window_log;
    std::vector<std::vector<Mail>> outbox;  // one arena per dst shard
    uint64_t out_pending = 0;               // mails queued this window
    std::atomic<uint64_t> out_published{0};
  };

  struct Pool;  // worker thread pool (simulator.cc)

  /// Per-thread executing context: which simulator + shard the current
  /// event (if any) belongs to. Thread-local so worker threads resolve
  /// Now()/Schedule against their own shard with no synchronization.
  struct ExecContext {
    Simulator* sim = nullptr;
    Shard* shard = nullptr;
  };
  static ExecContext& TlsCtx() {
    static thread_local ExecContext ctx;
    return ctx;
  }

  uint32_t AllocSlot(Shard& sh);
  void ReleaseSlot(Shard& sh, uint32_t index);
  static bool SlotLive(const Shard& sh, const HeapEntry& e) {
    return sh.slots[e.slot].generation == e.generation;
  }
  void CompactHeap(Shard& sh);
  void PruneDeadTop(Shard& sh);

  /// Inserts a fully stamped event into `dst`'s heap. Cold-path cross-
  /// shard inserts verify when >= dst.now.
  EventId InsertEvent(Shard& dst, SimTime when, uint64_t seq, SimCallback fn,
                      const char* label);
  uint64_t MakeStamp(Shard& ctx) { return ctx.stamp_base | ctx.counter++; }

  /// Coordinator clock: the maximum virtual time any context has reached.
  SimTime CoordinatorNow() const { return coordinator_now_; }
  Shard& ScheduleTargetForExternal();

  bool StepLegacy();
  bool StepSharded();
  /// Prunes tombstones and returns the queue holding the canonically
  /// minimal pending event (worker shards + global), or nullptr if empty.
  Shard* NextCanonical();
  /// Pops and runs `sh`'s top event in coordinator context (serial modes
  /// and global-event barriers): mixes the fingerprint inline.
  void ExecTopCanonical(Shard& sh);
  void FinalizeNows(SimTime deadline);

  // Parallel window machinery (all coordinator-side unless noted).
  void DrainMailboxes();
  void ExecuteWindow(HeapKey bound, uint32_t workers);
  void RunShardWindow(Shard& sh, HeapKey bound);  // worker-side
  void MergeWindowLogs();
  void EnsurePool(uint32_t worker_threads);
  void StopPool();
  void WorkerMain();
  void ProcessWindowShards(uint64_t round);

  /// Hot-path matrix lookup; degenerates to the scalar when no matrix has
  /// been installed (the common, legacy configuration).
  SimDuration PairLa(uint32_t src, uint32_t dst) const {
    return pair_la_.empty() ? lookahead_
                            : pair_la_[src * shards_.size() + dst];
  }
  /// Per-src outgoing minimum over the matrix row (window-bound term).
  SimDuration OutMinLa(uint32_t src) const {
    return pair_la_.empty() ? lookahead_ : out_min_la_[src];
  }
  void RecomputeOutMinRow(uint32_t src);

  void ObserveExecuted(SimTime at, const char* label, uint64_t digest);

  uint64_t executed_ = 0;
  bool sharded_ = false;
  SimDuration lookahead_ = 1;
  /// Pairwise lookahead matrix, row-major [src * N + dst]; empty until the
  /// first SetPairwiseLookahead call (uniform scalar mode).
  std::vector<SimDuration> pair_la_;
  /// Cached per-src row minima over dst != src (window-bound terms).
  std::vector<SimDuration> out_min_la_;
  EngineStats engine_stats_;
  SimTime coordinator_now_ = 0;
  /// Context-less schedule target (ShardScope); -1 = default (shard 0 for
  /// external callers, the global queue for global-event context).
  int64_t scoped_shard_ = -1;
  std::atomic<bool> workers_active_{false};

  /// Worker shards; always at least one. shards_[0] doubles as the
  /// unsharded engine's single queue.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Barrier-serialized global queue; null until ConfigureShards(>= 2).
  std::unique_ptr<Shard> global_;
  std::unique_ptr<Pool> pool_;

  Rng rng_;
  uint64_t inspect_every_ = 1;
  std::function<void()> inspector_;

  uint64_t fingerprint_ = 0;
  Trace* trace_out_ = nullptr;
  const Trace* replay_ = nullptr;
  size_t replay_cursor_ = 0;
  std::string replay_divergence_;
};

}  // namespace aurora::sim
