// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's multi-AZ AWS testbed. All
// protocol components run as callbacks on a single virtual clock; identical
// seeds produce identical executions, which makes the failure-injection
// tests and the latency-shape benchmarks reproducible.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/trace.h"

namespace aurora::sim {

/// Identifies a scheduled event; usable with Cancel().
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded event loop over virtual microseconds.
///
/// Events at equal timestamps run in scheduling order (FIFO), which keeps
/// executions deterministic without artificial tie-breaking jitter.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at Now() + delay (delay >= 0). `label` names the
  /// schedule site in captured traces (must be a string literal or outlive
  /// the event); unlabeled events trace as "".
  EventId Schedule(SimDuration delay, std::function<void()> fn,
                   const char* label = "");

  /// Schedules at an absolute virtual time (>= Now()).
  EventId ScheduleAt(SimTime when, std::function<void()> fn,
                     const char* label = "");

  /// Best-effort cancellation; a no-op if already fired or unknown.
  void Cancel(EventId id);

  /// Runs until the event queue is empty.
  void Run();

  /// Runs all events with timestamp <= deadline; clock lands on deadline.
  void RunUntil(SimTime deadline);

  /// Runs for `duration` of virtual time from Now().
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  /// Executes the single next event. Returns false if the queue is empty.
  bool Step();

  /// Number of scheduled events that will still fire (cancelled events are
  /// excluded, whether or not their heap slot has been reclaimed).
  size_t PendingEvents() const { return live_.size(); }
  uint64_t ExecutedEvents() const { return executed_; }

  /// Running FNV-1a digest over every executed event (time + label), in
  /// execution order. Two runs with equal fingerprints executed the same
  /// event schedule; see Trace::MixFingerprint. Always maintained (one
  /// short hash per event), so any pair of runs can be compared after the
  /// fact without having armed anything up front.
  uint64_t ScheduleFingerprint() const { return fingerprint_; }

  // -- Trace capture & replay verification (src/sim/trace.h) --------------
  //
  // StartTrace appends every subsequently executed event to `out`;
  // BeginReplayCheck verifies each executed event against a previously
  // captured trace instead. A trace never drives execution — closures are
  // not serializable — the caller re-runs the same seeded scenario and the
  // simulator proves the schedules identical (or reports the first
  // divergence). Recording and replay-checking may be active together
  // (e.g. re-capturing while verifying).

  /// Starts appending executed events to `out` (not owned; must outlive
  /// recording). Passing nullptr stops recording.
  void StartTrace(Trace* out) { trace_out_ = out; }
  void StopTrace() { trace_out_ = nullptr; }

  /// Starts verifying executed events against `trace` (not owned). Each
  /// executed event is compared to the next recorded one; the first
  /// mismatch (or running past the recorded stream) is captured once.
  void BeginReplayCheck(const Trace* trace) {
    replay_ = trace;
    replay_cursor_ = 0;
    replay_divergence_.clear();
  }
  void EndReplayCheck() { replay_ = nullptr; }

  /// True once a replay check saw a mismatch. Events beyond the recorded
  /// stream's end are NOT a divergence (the capturing run may have stopped
  /// mid-scenario); a shorter replay shows up as fingerprint inequality.
  bool ReplayDiverged() const { return !replay_divergence_.empty(); }
  /// Human-readable first divergence ("" while none).
  const std::string& ReplayDivergence() const { return replay_divergence_; }

  /// Root generator; actors fork children from it for independent streams.
  Rng& rng() { return rng_; }

  /// Installs a post-event inspector: `fn` runs after every `every_n`-th
  /// executed event (n >= 1). The invariant auditor hangs off this hook so
  /// it can observe the cluster at real event boundaries — between any two
  /// events the system must be in a protocol-legal state. The inspector
  /// must not schedule events or mutate actor state.
  void SetInspector(uint64_t every_n, std::function<void()> fn) {
    inspect_every_ = every_n == 0 ? 1 : every_n;
    inspector_ = std::move(fn);
  }
  void ClearInspector() { inspector_ = nullptr; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
    const char* label;  // trace label; string literal, never owned
    std::function<void()> fn;
  };
  struct EventGreater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops the min event off the heap by move (std::priority_queue only
  /// exposes a const top(), forcing a deep copy of the closure and any
  /// captured request payloads).
  Event PopEvent();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  /// Min-heap via std::push_heap/std::pop_heap over a plain vector.
  std::vector<Event> queue_;
  /// Ids scheduled and neither fired nor cancelled. Cancel() simply erases
  /// here; Step() discards heap entries whose id is no longer live, so a
  /// cancel can never leak bookkeeping past the event's pop.
  std::unordered_set<EventId> live_;
  Rng rng_;
  uint64_t inspect_every_ = 1;
  std::function<void()> inspector_;

  uint64_t fingerprint_ = 0;
  Trace* trace_out_ = nullptr;
  const Trace* replay_ = nullptr;
  size_t replay_cursor_ = 0;
  std::string replay_divergence_;

  /// Trace/verify one executed event (called from Step before `fn` runs).
  void ObserveExecuted(SimTime at, const char* label);
};

}  // namespace aurora::sim
