#include "src/sim/network.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace aurora::sim {

namespace {
struct NetMetrics {
  metrics::Counter* messages_sent;
  metrics::Counter* bytes_sent;
  metrics::Counter* messages_dropped;
  metrics::Counter* partitions_set;
  metrics::Gauge* active_partitions;
};
NetMetrics& M() {
  static NetMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return NetMetrics{r.GetCounter("net.messages_sent"),
                      r.GetCounter("net.bytes_sent"),
                      r.GetCounter("net.messages_dropped"),
                      r.GetCounter("net.partitions_set"),
                      r.GetGauge("net.active_partitions")};
  }();
  return m;
}
}  // namespace

Network::Network(Simulator* sim, NetworkOptions options)
    : sim_(sim), options_(options), rng_(sim->rng().Fork()) {}

void Network::RegisterNode(NodeId node, AzId az,
                           NodeLifecycleListener* listener) {
  assert(!nodes_.contains(node));
  NodeState st;
  st.az = az;
  st.listener = listener;
  nodes_[node] = st;
}

void Network::SetListener(NodeId node, NodeLifecycleListener* listener) {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  it->second.listener = listener;
}

bool Network::IsRegistered(NodeId node) const { return nodes_.contains(node); }

AzId Network::AzOf(NodeId node) const {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  return it->second.az;
}

bool Network::IsUp(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.up;
}

void Network::Crash(NodeId node) {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  if (!it->second.up) return;
  it->second.up = false;
  it->second.incarnation++;
  AURORA_DEBUG << "node " << node << " crashed";
  if (it->second.listener != nullptr) it->second.listener->OnCrash();
}

void Network::Restart(NodeId node) {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  if (it->second.up) return;
  // A node inside a failed AZ cannot come back until the AZ recovers.
  if (IsAzFailed(it->second.az)) return;
  it->second.up = true;
  AURORA_DEBUG << "node " << node << " restarted";
  if (it->second.listener != nullptr) it->second.listener->OnRestart();
}

void Network::FailAz(AzId az) {
  failed_azs_[az] = true;
  for (auto& [id, st] : nodes_) {
    if (st.az == az) Crash(id);
  }
}

void Network::RestoreAz(AzId az) {
  failed_azs_[az] = false;
  for (auto& [id, st] : nodes_) {
    if (st.az == az) Restart(id);
  }
}

bool Network::IsAzFailed(AzId az) const {
  auto it = failed_azs_.find(az);
  return it != failed_azs_.end() && it->second;
}

uint64_t Network::PairKey(NodeId a, NodeId b) const {
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void Network::Partition(NodeId a, NodeId b, bool blocked) {
  partitions_[PairKey(a, b)] = blocked;
  if (AURORA_METRICS_ON()) {
    if (blocked) M().partitions_set->Add(1);
    int64_t active = 0;
    for (const auto& [key, is_blocked] : partitions_) {
      if (is_blocked) active++;
    }
    M().active_partitions->Set(active);
  }
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  auto it = partitions_.find(PairKey(a, b));
  return it != partitions_.end() && it->second;
}

void Network::SetNodeSlowdown(NodeId node, double factor) {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  it->second.slowdown = factor;
}

double Network::NodeSlowdown(NodeId node) const {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  return it->second.slowdown;
}

SimDuration Network::SampleLatency(NodeId from, NodeId to, uint64_t bytes) {
  const auto& src = nodes_.at(from);
  const auto& dst = nodes_.at(to);
  SimDuration base;
  if (from == to) {
    base = 1;  // loopback
  } else if (src.az == dst.az) {
    base = options_.intra_az.Sample(rng_);
  } else {
    base = options_.cross_az.Sample(rng_);
  }
  double lat = static_cast<double>(base) * src.slowdown * dst.slowdown;
  if (options_.bytes_per_us > 0.0) {
    lat += static_cast<double>(bytes) / options_.bytes_per_us;
  }
  return static_cast<SimDuration>(std::max(1.0, lat));
}

Network::SendPlan Network::PlanSend(NodeId from, NodeId to, uint64_t bytes) {
  stats_.messages_sent++;
  stats_.bytes_sent += bytes;
  AURORA_COUNT(M().messages_sent, 1);
  AURORA_COUNT(M().bytes_sent, bytes);
  auto src_it = nodes_.find(from);
  auto dst_it = nodes_.find(to);
  assert(src_it != nodes_.end() && dst_it != nodes_.end());
  if (!src_it->second.up || !dst_it->second.up || IsPartitioned(from, to)) {
    stats_.messages_dropped++;
    AURORA_COUNT(M().messages_dropped, 1);
    return SendPlan{};
  }
  SimDuration latency = SampleLatency(from, to, bytes);
  if (options_.fifo_links) {
    const uint64_t link = (static_cast<uint64_t>(from) << 32) | to;
    SimTime& last = link_clock_[link];
    const SimTime deliver_at = std::max(sim_->Now() + latency, last + 1);
    latency = deliver_at - sim_->Now();
    last = deliver_at;
  }
  return SendPlan{true, latency, dst_it->second.incarnation};
}

bool Network::Arrives(NodeId to, uint64_t dst_incarnation, uint64_t bytes) {
  auto it = nodes_.find(to);
  if (it == nodes_.end() || !it->second.up ||
      it->second.incarnation != dst_incarnation) {
    stats_.messages_dropped++;
    AURORA_COUNT(M().messages_dropped, 1);
    return false;
  }
  stats_.messages_delivered++;
  stats_.bytes_delivered += bytes;
  return true;
}

}  // namespace aurora::sim
