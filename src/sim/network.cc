#include "src/sim/network.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace aurora::sim {

namespace {
struct NetMetrics {
  metrics::Counter* messages_sent;
  metrics::Counter* bytes_sent;
  metrics::Counter* messages_dropped;
  metrics::Counter* partitions_set;
  metrics::Gauge* active_partitions;
};
NetMetrics& M() {
  static NetMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return NetMetrics{r.GetCounter("net.messages_sent"),
                      r.GetCounter("net.bytes_sent"),
                      r.GetCounter("net.messages_dropped"),
                      r.GetCounter("net.partitions_set"),
                      r.GetGauge("net.active_partitions")};
  }();
  return m;
}

/// Topology/liveness mutations are barrier-only: they touch state every
/// lane reads without synchronization, so a call from inside a parallel
/// window would be a data race AND a determinism hole. Enforced in all
/// build types.
void CheckBarrierOnly(const Simulator* sim, const char* what) {
  if (sim->WorkersActive()) {
    std::fprintf(stderr, "network: %s during a parallel window\n", what);
    std::abort();
  }
}
}  // namespace

Network::Network(Simulator* sim, NetworkOptions options)
    : sim_(sim), options_(options) {
  // Lane 0 takes the fork the pre-sharding network took, so unsharded and
  // single-shard runs draw the identical latency stream.
  lanes_.push_back(std::make_unique<Lane>(sim->rng().Fork()));
}

void Network::PrepareShardLanes() {
  CheckBarrierOnly(sim_, "PrepareShardLanes");
  while (lanes_.size() < sim_->ShardCount()) {
    lanes_.push_back(std::make_unique<Lane>(lanes_[0]->rng.Fork()));
  }
}

Network::Lane& Network::CurrentLane() {
  const ShardKey shard = sim_->ExecutingShard();
  if (shard == kShardNone) return *lanes_[0];
  if (shard >= lanes_.size()) {
    // An executing worker shard with no lane means PrepareShardLanes was
    // skipped, or ran before ConfigureShards grew the shard count. During
    // a parallel window the lane-0 fallback would put several worker
    // threads on one rng/link_clock/stats — a data race masked as a
    // working configuration — so it is fatal there in all build types.
    // Outside windows (serial oracle) lane 0 stays the deterministic
    // pre-sharding stream.
    if (sim_->WorkersActive()) {
      std::fprintf(stderr,
                   "network: executing shard %u has no lane "
                   "(PrepareShardLanes not called after ConfigureShards?)\n",
                   shard);
      std::abort();
    }
    return *lanes_[0];
  }
  return *lanes_[shard];
}

void Network::RegisterNode(NodeId node, AzId az,
                           NodeLifecycleListener* listener) {
  assert(!nodes_.contains(node));
  NodeState st;
  st.az = az;
  st.listener = listener;
  nodes_[node] = st;
  // A node lands on shard 0 until SetNodeShard moves it; the matrix must
  // reflect that placement immediately in case it never moves.
  if (pairwise_enabled_) LowerLookaheadForNode(node);
}

void Network::SetListener(NodeId node, NodeLifecycleListener* listener) {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  it->second.listener = listener;
}

bool Network::IsRegistered(NodeId node) const { return nodes_.contains(node); }

AzId Network::AzOf(NodeId node) const {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  return it->second.az;
}

void Network::SetNodeShard(NodeId node, ShardKey shard) {
  CheckBarrierOnly(sim_, "SetNodeShard");
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  assert(shard < sim_->ShardCount());
  it->second.shard = shard;
  if (pairwise_enabled_) LowerLookaheadForNode(node);
}

void Network::EnablePairwiseLookahead() {
  CheckBarrierOnly(sim_, "EnablePairwiseLookahead");
  const uint32_t n = sim_->ShardCount();
  if (n < 2) return;  // single shard: the scalar engine is the oracle
  pairwise_enabled_ = true;
  // Ceiling: the widest bound any hop class can justify. Pairs that never
  // host node traffic keep it — only engine-mediated hops (which size
  // themselves via Simulator::LookaheadTo) can cross such pairs, so the
  // high entry just means wide windows, never a late event.
  const SimDuration ceiling = std::max(HopFloor(false), HopFloor(true));
  for (ShardKey s = 0; s < n; ++s) {
    for (ShardKey d = 0; d < n; ++d) {
      if (s != d) sim_->SetPairwiseLookahead(s, d, ceiling);
    }
  }
  for (const auto& [id, st] : nodes_) LowerLookaheadForNode(id);
}

void Network::LowerLookaheadForNode(NodeId node) {
  const NodeState& a = nodes_.at(node);
  for (const auto& [other, b] : nodes_) {
    if (other == node || b.shard == a.shard) continue;
    const SimDuration floor = HopFloor(a.az != b.az);
    // Link classes are symmetric, so both directions lower together.
    if (floor < sim_->PairwiseLookahead(a.shard, b.shard)) {
      sim_->SetPairwiseLookahead(a.shard, b.shard, floor);
    }
    if (floor < sim_->PairwiseLookahead(b.shard, a.shard)) {
      sim_->SetPairwiseLookahead(b.shard, a.shard, floor);
    }
  }
}

ShardKey Network::ShardOf(NodeId node) const {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  return it->second.shard;
}

bool Network::IsUp(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.up;
}

void Network::Crash(NodeId node) {
  CheckBarrierOnly(sim_, "Crash");
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  if (!it->second.up) return;
  it->second.up = false;
  it->second.incarnation++;
  AURORA_DEBUG << "node " << node << " crashed";
  if (it->second.listener != nullptr) {
    // Listener re-arms (timers the actor schedules while handling the
    // transition) must land on the actor's shard, not the global queue.
    Simulator::ShardScope scope(sim_, it->second.shard);
    it->second.listener->OnCrash();
  }
}

void Network::Restart(NodeId node) {
  CheckBarrierOnly(sim_, "Restart");
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  if (it->second.up) return;
  // A node inside a failed AZ cannot come back until the AZ recovers.
  if (IsAzFailed(it->second.az)) return;
  it->second.up = true;
  AURORA_DEBUG << "node " << node << " restarted";
  if (it->second.listener != nullptr) {
    Simulator::ShardScope scope(sim_, it->second.shard);
    it->second.listener->OnRestart();
  }
}

void Network::FailAz(AzId az) {
  failed_azs_[az] = true;
  for (auto& [id, st] : nodes_) {
    if (st.az == az) Crash(id);
  }
}

void Network::RestoreAz(AzId az) {
  failed_azs_[az] = false;
  for (auto& [id, st] : nodes_) {
    if (st.az == az) Restart(id);
  }
}

bool Network::IsAzFailed(AzId az) const {
  auto it = failed_azs_.find(az);
  return it != failed_azs_.end() && it->second;
}

uint64_t Network::PairKey(NodeId a, NodeId b) const {
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void Network::Partition(NodeId a, NodeId b, bool blocked) {
  CheckBarrierOnly(sim_, "Partition");
  partitions_[PairKey(a, b)] = blocked;
  if (AURORA_METRICS_ON()) {
    if (blocked) M().partitions_set->Add(1);
    int64_t active = 0;
    for (const auto& [key, is_blocked] : partitions_) {
      if (is_blocked) active++;
    }
    M().active_partitions->Set(active);
  }
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  auto it = partitions_.find(PairKey(a, b));
  return it != partitions_.end() && it->second;
}

void Network::SetNodeSlowdown(NodeId node, double factor) {
  CheckBarrierOnly(sim_, "SetNodeSlowdown");
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  it->second.slowdown = factor;
}

double Network::NodeSlowdown(NodeId node) const {
  auto it = nodes_.find(node);
  assert(it != nodes_.end());
  return it->second.slowdown;
}

SimDuration Network::SampleLatencyInLane(Lane& lane, NodeId from, NodeId to,
                                         uint64_t bytes) {
  const auto& src = nodes_.at(from);
  const auto& dst = nodes_.at(to);
  SimDuration base;
  if (from == to) {
    return 1;  // loopback: same shard by construction, floor-exempt
  } else if (src.az == dst.az) {
    base = options_.intra_az.Sample(lane.rng);
  } else {
    base = options_.cross_az.Sample(lane.rng);
  }
  double lat = static_cast<double>(base) * src.slowdown * dst.slowdown;
  if (options_.bytes_per_us > 0.0) {
    lat += static_cast<double>(bytes) / options_.bytes_per_us;
  }
  // The floor binds AFTER slowdowns: no distribution tail or sub-unity
  // slowdown can undercut the lookahead contract. The class floor is the
  // same guarantee per link class — it is what makes the pairwise
  // lookahead matrix conservative for every message this method can emit.
  const double floor = static_cast<double>(HopFloor(src.az != dst.az));
  return static_cast<SimDuration>(std::max(floor, lat));
}

SimDuration Network::SampleLatency(NodeId from, NodeId to, uint64_t bytes) {
  return SampleLatencyInLane(CurrentLane(), from, to, bytes);
}

Network::SendPlan Network::PlanSend(NodeId from, NodeId to, uint64_t bytes) {
  Lane& lane = CurrentLane();
  lane.stats.messages_sent++;
  lane.stats.bytes_sent += bytes;
  AURORA_COUNT(M().messages_sent, 1);
  AURORA_COUNT(M().bytes_sent, bytes);
  auto src_it = nodes_.find(from);
  auto dst_it = nodes_.find(to);
  assert(src_it != nodes_.end() && dst_it != nodes_.end());
  if (!src_it->second.up || !dst_it->second.up || IsPartitioned(from, to)) {
    lane.stats.messages_dropped++;
    AURORA_COUNT(M().messages_dropped, 1);
    return SendPlan{};
  }
  SimDuration latency = SampleLatencyInLane(lane, from, to, bytes);
  if (options_.fifo_links) {
    // FIFO clocks live in the sending context's lane; the adjustment only
    // ever pushes delivery later, so it cannot break the latency floor.
    const uint64_t link = (static_cast<uint64_t>(from) << 32) | to;
    SimTime& last = lane.link_clock[link];
    const SimTime deliver_at = std::max(sim_->Now() + latency, last + 1);
    latency = deliver_at - sim_->Now();
    last = deliver_at;
  }
  return SendPlan{true, latency, dst_it->second.incarnation,
                  dst_it->second.shard};
}

bool Network::Arrives(NodeId to, uint64_t dst_incarnation, uint64_t bytes) {
  Lane& lane = CurrentLane();
  auto it = nodes_.find(to);
  if (it == nodes_.end() || !it->second.up ||
      it->second.incarnation != dst_incarnation) {
    lane.stats.messages_dropped++;
    AURORA_COUNT(M().messages_dropped, 1);
    return false;
  }
  lane.stats.messages_delivered++;
  lane.stats.bytes_delivered += bytes;
  return true;
}

const NetworkStats& Network::stats() const {
  agg_stats_ = NetworkStats{};
  for (const auto& lane : lanes_) {
    agg_stats_.messages_sent += lane->stats.messages_sent;
    agg_stats_.messages_delivered += lane->stats.messages_delivered;
    agg_stats_.messages_dropped += lane->stats.messages_dropped;
    agg_stats_.bytes_sent += lane->stats.bytes_sent;
    agg_stats_.bytes_delivered += lane->stats.bytes_delivered;
  }
  return agg_stats_;
}

void Network::ResetStats() {
  for (auto& lane : lanes_) lane->stats = NetworkStats{};
}

}  // namespace aurora::sim
