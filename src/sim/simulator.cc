#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aurora::sim {

namespace {
constexpr size_t kInitialQueueCapacity = 1024;
}  // namespace

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  queue_.reserve(kInitialQueueCapacity);
}

EventId Simulator::Schedule(SimDuration delay, std::function<void()> fn,
                            const char* label) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn), label);
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn,
                              const char* label) {
  assert(when >= now_);
  const EventId id = next_id_++;
  queue_.push_back(Event{when, next_seq_++, id, label, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), EventGreater{});
  live_.insert(id);
  return id;
}

void Simulator::Cancel(EventId id) {
  // Erasing from the live set is the whole cancellation; the heap entry is
  // discarded when it surfaces. An already-fired (or never-scheduled) id is
  // absent, so this is a clean no-op rather than a permanently retained
  // tombstone.
  if (id != kInvalidEvent) live_.erase(id);
}

Simulator::Event Simulator::PopEvent() {
  std::pop_heap(queue_.begin(), queue_.end(), EventGreater{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

void Simulator::ObserveExecuted(SimTime at, const char* label) {
  const uint64_t digest = Trace::EventDigest(at, label);
  fingerprint_ = Trace::MixFingerprint(fingerprint_, digest);
  if (trace_out_ != nullptr) {
    trace_out_->events.push_back(TraceEventRecord{at, label, digest});
  }
  if (replay_ != nullptr && replay_divergence_.empty() &&
      replay_cursor_ < replay_->events.size()) {
    const TraceEventRecord& want = replay_->events[replay_cursor_];
    if (want.at != at || want.label != label) {
      replay_divergence_ =
          "replay diverged at event " + std::to_string(replay_cursor_) +
          ": recorded (t=" + std::to_string(want.at) + ", \"" + want.label +
          "\") vs executed (t=" + std::to_string(at) + ", \"" + label + "\")";
    }
    ++replay_cursor_;
  }
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = PopEvent();
    if (live_.erase(ev.id) == 0) continue;  // cancelled
    assert(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    ObserveExecuted(ev.time, ev.label);
    ev.fn();
    if (inspector_ && executed_ % inspect_every_ == 0) inspector_();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.front();
    if (top.time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace aurora::sim
