#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "src/common/metrics.h"

namespace aurora::sim {

namespace {
constexpr size_t kInitialQueueCapacity = 1024;
/// Below this heap size tombstone compaction is not worth the rebuild.
constexpr size_t kCompactMinEntries = 64;
/// EventId reserves 24 bits for (slot index + 1).
constexpr uint32_t kMaxSlotIndex = (1u << 24) - 2;
/// Stamp context of the global queue: sorts after every worker context at
/// equal timestamps, so a global event runs once the whole window time is
/// otherwise quiesced.
constexpr uint64_t kGlobalStampBase = 0xffffull << 48;

/// Engine safety invariants are enforced even in release builds: a
/// violated window/lookahead contract silently corrupts determinism,
/// which is far worse than an abort.
void Check(bool ok, const char* msg) {
  if (!ok) {
    std::fprintf(stderr, "simulator invariant violated: %s\n", msg);
    std::abort();
  }
}

SimTime SatAdd(SimTime a, SimDuration b) {
  const SimTime max = std::numeric_limits<SimTime>::max();
  return a > max - b ? max : a + b;
}

/// Shard-claim word layout: low bits hold the next shard index, high bits
/// the round the cursor belongs to. kMaxShards (200) fits comfortably in
/// 20 bits; 44 bits of round cannot wrap in any realistic run.
constexpr uint64_t kClaimIndexBits = 20;
constexpr uint64_t kClaimIndexMask = (1ull << kClaimIndexBits) - 1;

/// Engine-efficiency metrics (DESIGN.md §5b): registered once, mirrored
/// from EngineStats only when the registry is enabled, so the default
/// (metrics-off) fingerprint path never touches them.
struct SimMetrics {
  metrics::Counter* windows;
  metrics::Counter* mailbox_batches;
  metrics::Counter* mailbox_msgs;
  Histogram* window_span;
};
SimMetrics& M() {
  static SimMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return SimMetrics{r.GetCounter("aurora.sim.windows"),
                      r.GetCounter("aurora.sim.mailbox_batches"),
                      r.GetCounter("aurora.sim.mailbox_msgs"),
                      r.GetHistogram("aurora.sim.window_span_us")};
  }();
  return m;
}
}  // namespace

/// Persistent worker pool for RunSharded. Rounds are broadcast via
/// cv_start; workers claim shards by CAS on a round-tagged claim word and
/// the last finished shard releases the coordinator via cv_done.
/// Everything the workers read (bound, active_shards, shard state) is
/// published under `mu` before the round counter advances, and a claim
/// succeeds only while the word still carries the claimant's own round —
/// a worker straggling out of round k can never grab a shard of round
/// k+1, so every thread that touches round state entered it through the
/// mutex-published round broadcast.
struct Simulator::Pool {
  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::vector<std::thread> threads;
  uint64_t round = 0;
  bool shutdown = false;
  /// (round << kClaimIndexBits) | next shard index; see ProcessWindowShards.
  std::atomic<uint64_t> claim{0};
  uint32_t done_shards = 0;
  /// Written under mu at round setup, but read lock-free at the top of
  /// ProcessWindowShards by stragglers from the previous round (whose
  /// claim CAS the round tag then rejects) — atomic so that overlap is
  /// defined. Constant within a RunSharded call.
  std::atomic<uint32_t> active_shards{0};
  HeapKey bound{0, 0};
};

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  auto shard = std::make_unique<Shard>();
  shard->heap.reserve(kInitialQueueCapacity);
  shard->slots.reserve(kInitialQueueCapacity);
  shards_.push_back(std::move(shard));
}

Simulator::~Simulator() { StopPool(); }

void Simulator::ConfigureShards(uint32_t count) {
  Check(count >= 1 && count <= kMaxShards, "shard count out of range");
  Check(!sharded_, "ConfigureShards called twice");
  Check(executed_ == 0 && shards_[0]->live == 0 && shards_[0]->heap.empty() &&
            shards_[0]->now == 0,
        "ConfigureShards requires a pristine simulator");
  sharded_ = true;
  for (uint32_t i = 1; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = i;
    shard->stamp_base = static_cast<uint64_t>(i) << 48;
    shard->heap.reserve(kInitialQueueCapacity);
    shard->slots.reserve(kInitialQueueCapacity);
    shards_.push_back(std::move(shard));
  }
  for (auto& sp : shards_) sp->outbox.resize(count);
  // A single-shard configuration stays bit-identical to the unsharded
  // engine, including ScheduleGlobal aliasing to Schedule; the separate
  // global queue only exists when there are shards to synchronize.
  if (count >= 2) {
    global_ = std::make_unique<Shard>();
    global_->id = kGlobalShardTag;
    global_->stamp_base = kGlobalStampBase;
  }
}

void Simulator::SetLookahead(SimDuration lookahead) {
  Check(lookahead >= 1, "lookahead must be >= 1us");
  lookahead_ = lookahead;
  // The scalar is the uniform default; any previously installed matrix is
  // superseded by it.
  pair_la_.clear();
  out_min_la_.clear();
}

void Simulator::SetPairwiseLookahead(ShardKey src, ShardKey dst,
                                     SimDuration bound) {
  Check(sharded_, "SetPairwiseLookahead requires ConfigureShards");
  Check(!WorkersActive(), "SetPairwiseLookahead during a parallel window");
  Check(src < shards_.size() && dst < shards_.size() && src != dst,
        "SetPairwiseLookahead: bad shard pair");
  Check(bound >= 1, "pairwise lookahead must be >= 1us");
  const size_t n = shards_.size();
  if (pair_la_.empty()) {
    pair_la_.assign(n * n, lookahead_);
    out_min_la_.assign(n, lookahead_);
  }
  SimDuration& cell = pair_la_[src * n + dst];
  const SimDuration old = cell;
  cell = bound;
  if (bound <= out_min_la_[src]) {
    out_min_la_[src] = bound;
  } else if (old == out_min_la_[src]) {
    RecomputeOutMinRow(src);
  }
}

void Simulator::RecomputeOutMinRow(uint32_t src) {
  const size_t n = shards_.size();
  SimDuration min_la = std::numeric_limits<SimDuration>::max();
  for (size_t d = 0; d < n; ++d) {
    if (d == src) continue;
    min_la = std::min(min_la, pair_la_[src * n + d]);
  }
  // A single-shard matrix has no cross pairs; keep the scalar so window
  // bounds degrade to legacy behavior instead of saturating.
  out_min_la_[src] =
      min_la == std::numeric_limits<SimDuration>::max() ? lookahead_ : min_la;
}

SimDuration Simulator::PairwiseLookahead(ShardKey src, ShardKey dst) const {
  Check(src < shards_.size() && dst < shards_.size(),
        "PairwiseLookahead: unknown shard");
  return PairLa(src, dst);
}

SimDuration Simulator::LookaheadTo(ShardKey dst) const {
  Check(dst < shards_.size(), "LookaheadTo: unknown shard");
  const ExecContext& ctx = TlsCtx();
  if (ctx.sim == this && ctx.shard->id != kGlobalShardTag &&
      ctx.shard->id != dst) {
    return PairLa(ctx.shard->id, dst);
  }
  return lookahead_;
}

SimTime Simulator::Now() const {
  const ExecContext& ctx = TlsCtx();
  if (ctx.sim == this) return ctx.shard->now;
  if (!sharded_) return shards_[0]->now;
  return coordinator_now_;
}

ShardKey Simulator::ExecutingShard() const {
  const ExecContext& ctx = TlsCtx();
  if (ctx.sim == this && ctx.shard->id != kGlobalShardTag) {
    return ctx.shard->id;
  }
  return kShardNone;
}

Simulator::ShardScope::ShardScope(Simulator* sim, ShardKey shard)
    : sim_(sim), saved_(sim->scoped_shard_) {
  Check(shard < sim->shards_.size(), "ShardScope: unknown shard");
  sim->scoped_shard_ = static_cast<int64_t>(shard);
}

Simulator::ShardScope::~ShardScope() { sim_->scoped_shard_ = saved_; }

Simulator::Shard& Simulator::ScheduleTargetForExternal() {
  return scoped_shard_ >= 0 ? *shards_[static_cast<size_t>(scoped_shard_)]
                            : *shards_[0];
}

uint32_t Simulator::AllocSlot(Shard& sh) {
  if (sh.free_head != 0) {
    const uint32_t index = sh.free_head - 1;
    sh.free_head = sh.slots[index].next_free;
    return index;
  }
  Check(sh.slots.size() <= kMaxSlotIndex, "shard slab exhausted (2^24 slots)");
  sh.slots.emplace_back();
  return static_cast<uint32_t>(sh.slots.size() - 1);
}

void Simulator::ReleaseSlot(Shard& sh, uint32_t index) {
  Slot& slot = sh.slots[index];
  slot.fn = SimCallback();  // destroy the closure (and its captures) now
  slot.generation++;        // invalidates outstanding ids and heap entries
  slot.next_free = sh.free_head;
  sh.free_head = index + 1;
}

EventId Simulator::InsertEvent(Shard& dst, SimTime when, uint64_t seq,
                               SimCallback fn, const char* label) {
  assert(when >= dst.now);
  const uint32_t index = AllocSlot(dst);
  Slot& slot = dst.slots[index];
  slot.fn = std::move(fn);
  slot.label = label;
  // The fire time is already known, so the full trace digest is computed
  // once here; execution just mixes the stored value into the fingerprint.
  slot.digest = Trace::EventDigest(when, label);
  dst.heap.push_back(HeapEntry{when, seq, index, slot.generation});
  std::push_heap(dst.heap.begin(), dst.heap.end(), HeapGreater{});
  ++dst.live;
  return (static_cast<EventId>(slot.generation) << 32) |
         (static_cast<EventId>(dst.id) << 24) |
         static_cast<EventId>(index + 1);
}

EventId Simulator::Schedule(SimDuration delay, SimCallback fn,
                            const char* label) {
  assert(delay >= 0);
  const ExecContext& c = TlsCtx();
  if (c.sim == this) {
    Shard& ctx = *c.shard;
    // Global-event context honors ShardScope so lifecycle re-arms land on
    // the actor's shard; otherwise events inherit their scheduler's shard.
    Shard& dst = (ctx.id == kGlobalShardTag && scoped_shard_ >= 0)
                     ? *shards_[static_cast<size_t>(scoped_shard_)]
                     : ctx;
    return InsertEvent(dst, ctx.now + delay, MakeStamp(ctx), std::move(fn),
                       label);
  }
  Check(!WorkersActive(), "external Schedule during a parallel window");
  Shard& dst = ScheduleTargetForExternal();
  const SimTime base = sharded_ ? coordinator_now_ : dst.now;
  return InsertEvent(dst, base + delay, MakeStamp(dst), std::move(fn), label);
}

EventId Simulator::ScheduleAt(SimTime when, SimCallback fn,
                              const char* label) {
  const ExecContext& c = TlsCtx();
  if (c.sim == this) {
    Shard& ctx = *c.shard;
    assert(when >= ctx.now);
    Shard& dst = (ctx.id == kGlobalShardTag && scoped_shard_ >= 0)
                     ? *shards_[static_cast<size_t>(scoped_shard_)]
                     : ctx;
    return InsertEvent(dst, when, MakeStamp(ctx), std::move(fn), label);
  }
  Check(!WorkersActive(), "external ScheduleAt during a parallel window");
  Shard& dst = ScheduleTargetForExternal();
  assert(when >= (sharded_ ? coordinator_now_ : dst.now));
  return InsertEvent(dst, when, MakeStamp(dst), std::move(fn), label);
}

EventId Simulator::ScheduleOn(ShardKey shard, SimDuration delay,
                              SimCallback fn, const char* label) {
  assert(delay >= 0);
  Check(shard < shards_.size(), "ScheduleOn: unknown shard");
  Shard& dst = *shards_[shard];
  const ExecContext& c = TlsCtx();
  if (c.sim == this) {
    Shard& src = *c.shard;
    if (&src == &dst) {  // same-shard fast path == plain Schedule
      return InsertEvent(dst, src.now + delay, MakeStamp(src), std::move(fn),
                         label);
    }
    const SimTime when = src.now + delay;
    if (src.id != kGlobalShardTag) {
      // Cross-shard from a worker shard: the conservative-synchronization
      // contract. delay >= the (src, dst) pairwise lookahead guarantees
      // the event lands at or beyond every window bound the engine can
      // pick (the bound is min over pending shards s of next(s) +
      // min_d L(s, d) <= next(src) + L(src, dst) <= when), so mail
      // integrated at the next barrier can never be late.
      Check(delay >= PairLa(src.id, shard),
            "cross-shard ScheduleOn below the pairwise lookahead bound");
      if (WorkersActive()) {
        // Batched mailbox: the sender owns its shard for the whole window,
        // so the per-destination arena needs no lock; one release store
        // publishes the entire window's batch at the window edge.
        src.outbox[shard].push_back(
            Mail{when, src.counter++, label, std::move(fn)});
        ++src.out_pending;
        return kInvalidEvent;  // cross-window events are not cancellable
      }
      return InsertEvent(dst, when, MakeStamp(src), std::move(fn), label);
    }
    // Global-event context: workers are quiesced at the barrier, so a
    // direct insert into any shard is race-free.
    return InsertEvent(dst, when, MakeStamp(src), std::move(fn), label);
  }
  Check(!WorkersActive(), "external ScheduleOn during a parallel window");
  const SimTime base = sharded_ ? coordinator_now_ : dst.now;
  return InsertEvent(dst, base + delay, MakeStamp(dst), std::move(fn), label);
}

EventId Simulator::ScheduleGlobal(SimDuration delay, SimCallback fn,
                                  const char* label) {
  assert(delay >= 0);
  if (global_ == nullptr) return Schedule(delay, std::move(fn), label);
  const ExecContext& c = TlsCtx();
  Check(c.sim != this || c.shard->id == kGlobalShardTag,
        "ScheduleGlobal from worker-shard context");
  const SimTime base = c.sim == this ? c.shard->now : coordinator_now_;
  return InsertEvent(*global_, base + delay, MakeStamp(*global_),
                     std::move(fn), label);
}

EventId Simulator::ScheduleGlobalAt(SimTime when, SimCallback fn,
                                    const char* label) {
  if (global_ == nullptr) return ScheduleAt(when, std::move(fn), label);
  const ExecContext& c = TlsCtx();
  Check(c.sim != this || c.shard->id == kGlobalShardTag,
        "ScheduleGlobalAt from worker-shard context");
  assert(when >= (c.sim == this ? c.shard->now : coordinator_now_));
  return InsertEvent(*global_, when, MakeStamp(*global_), std::move(fn),
                     label);
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const uint32_t tag = static_cast<uint32_t>((id >> 24) & 0xffu);
  Shard* sh;
  if (tag == kGlobalShardTag) {
    if (global_ == nullptr) return;
    sh = global_.get();
  } else {
    Check(tag < shards_.size(), "Cancel: unknown shard tag");
    sh = shards_[tag].get();
  }
  if (WorkersActive()) {
    const ExecContext& c = TlsCtx();
    Check(c.sim == this && c.shard == sh,
          "cross-shard Cancel during a parallel window");
  }
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffu) - 1;
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  // A stale id (already fired, already cancelled, or from a recycled slot)
  // fails the generation check and is a clean no-op.
  if (index >= sh->slots.size() || sh->slots[index].generation != generation) {
    return;
  }
  ReleaseSlot(*sh, index);
  --sh->live;
  ++sh->dead_in_heap;
  if (sh->dead_in_heap > sh->heap.size() / 2 &&
      sh->heap.size() >= kCompactMinEntries) {
    CompactHeap(*sh);
  }
}

void Simulator::CompactHeap(Shard& sh) {
  std::erase_if(sh.heap,
                [&sh](const HeapEntry& e) { return !SlotLive(sh, e); });
  std::make_heap(sh.heap.begin(), sh.heap.end(), HeapGreater{});
  sh.dead_in_heap = 0;
}

void Simulator::PruneDeadTop(Shard& sh) {
  while (!sh.heap.empty() && !SlotLive(sh, sh.heap.front())) {
    std::pop_heap(sh.heap.begin(), sh.heap.end(), HeapGreater{});
    sh.heap.pop_back();
    --sh.dead_in_heap;
  }
}

void Simulator::ObserveExecuted(SimTime at, const char* label,
                                uint64_t digest) {
  if (trace_out_ != nullptr) {
    trace_out_->events.push_back(TraceEventRecord{at, label, digest});
  }
  if (replay_ != nullptr && replay_divergence_.empty() &&
      replay_cursor_ < replay_->events.size()) {
    const TraceEventRecord& want = replay_->events[replay_cursor_];
    if (want.at != at || want.label != label) {
      replay_divergence_ =
          "replay diverged at event " + std::to_string(replay_cursor_) +
          ": recorded (t=" + std::to_string(want.at) + ", \"" + want.label +
          "\") vs executed (t=" + std::to_string(at) + ", \"" + label + "\")";
    }
    ++replay_cursor_;
  }
}

bool Simulator::StepLegacy() {
  Shard& sh = *shards_[0];
  while (!sh.heap.empty()) {
    std::pop_heap(sh.heap.begin(), sh.heap.end(), HeapGreater{});
    const HeapEntry entry = sh.heap.back();
    sh.heap.pop_back();
    if (!SlotLive(sh, entry)) {  // cancelled; tombstone reclaimed here
      --sh.dead_in_heap;
      continue;
    }
    Slot& slot = sh.slots[entry.slot];
    assert(entry.time >= sh.now);
    sh.now = entry.time;
    ++executed_;
    fingerprint_ = Trace::MixFingerprint(fingerprint_, slot.digest);
    if (trace_out_ != nullptr || replay_ != nullptr) {
      ObserveExecuted(entry.time, slot.label, slot.digest);
    }
    // Move the callback out and recycle the slot BEFORE invoking: the
    // callback may schedule new events (possibly reusing this very slot).
    SimCallback fn = std::move(slot.fn);
    ReleaseSlot(sh, entry.slot);
    --sh.live;
    fn();
    if (inspector_ && executed_ % inspect_every_ == 0) inspector_();
    return true;
  }
  return false;
}

Simulator::Shard* Simulator::NextCanonical() {
  Shard* best = nullptr;
  for (auto& sp : shards_) {
    PruneDeadTop(*sp);
    if (sp->heap.empty()) continue;
    if (best == nullptr ||
        HeapKey{sp->heap.front().time, sp->heap.front().seq} <
            HeapKey{best->heap.front().time, best->heap.front().seq}) {
      best = sp.get();
    }
  }
  if (global_ != nullptr) {
    PruneDeadTop(*global_);
    if (!global_->heap.empty() &&
        (best == nullptr ||
         HeapKey{global_->heap.front().time, global_->heap.front().seq} <
             HeapKey{best->heap.front().time, best->heap.front().seq})) {
      best = global_.get();
    }
  }
  return best;
}

void Simulator::ExecTopCanonical(Shard& sh) {
  std::pop_heap(sh.heap.begin(), sh.heap.end(), HeapGreater{});
  const HeapEntry entry = sh.heap.back();
  sh.heap.pop_back();
  Slot& slot = sh.slots[entry.slot];
  assert(entry.time >= sh.now);
  sh.now = entry.time;
  if (entry.time > coordinator_now_) coordinator_now_ = entry.time;
  ++executed_;
  fingerprint_ = Trace::MixFingerprint(fingerprint_, slot.digest);
  if (trace_out_ != nullptr || replay_ != nullptr) {
    ObserveExecuted(entry.time, slot.label, slot.digest);
  }
  SimCallback fn = std::move(slot.fn);
  ReleaseSlot(sh, entry.slot);
  --sh.live;
  ExecContext& tls = TlsCtx();
  const ExecContext saved = tls;
  tls = ExecContext{this, &sh};
  fn();
  tls = saved;
  if (inspector_ && executed_ % inspect_every_ == 0) inspector_();
}

bool Simulator::StepSharded() {
  Shard* best = NextCanonical();
  if (best == nullptr) return false;
  ExecTopCanonical(*best);
  return true;
}

bool Simulator::Step() { return sharded_ ? StepSharded() : StepLegacy(); }

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  if (!sharded_) {
    Shard& sh = *shards_[0];
    for (;;) {
      // Reclaim tombstones at the top so the deadline check sees the event
      // that would actually fire next (a cancelled entry inside the window
      // must not smuggle a live event from beyond the deadline into Step).
      PruneDeadTop(sh);
      if (sh.heap.empty() || sh.heap.front().time > deadline) break;
      StepLegacy();
    }
    if (sh.now < deadline) sh.now = deadline;
    return;
  }
  for (;;) {
    Shard* best = NextCanonical();
    if (best == nullptr || best->heap.front().time > deadline) break;
    ExecTopCanonical(*best);
  }
  FinalizeNows(deadline);
}

void Simulator::FinalizeNows(SimTime deadline) {
  for (auto& sp : shards_) {
    if (sp->now < deadline) sp->now = deadline;
  }
  if (global_ != nullptr && global_->now < deadline) global_->now = deadline;
  if (coordinator_now_ < deadline) coordinator_now_ = deadline;
}

// ---------------------------------------------------------------------------
// Parallel windowed engine
// ---------------------------------------------------------------------------

void Simulator::RunSharded(SimTime deadline, int threads) {
  Check(sharded_, "RunSharded requires ConfigureShards");
  Check(TlsCtx().sim != this, "RunSharded from inside an event");
  if (threads < 1) threads = 1;
  const uint32_t workers =
      std::min(static_cast<uint32_t>(threads), ShardCount());
  EnsurePool(workers - 1);
  for (;;) {
    DrainMailboxes();
    // Scan for the minimal pending key per queue; this fixes the window.
    // The bound accumulates the pairwise term per pending shard: shard s
    // cannot emit a cross-shard event below next(s) + min_d L(s, d), so
    // the window may extend to the min of those horizons — per-shard
    // next keys AND per-pair lookahead, not one global scalar. With no
    // matrix installed this reduces exactly to t0 + lookahead.
    Shard* first = nullptr;
    HeapKey shard_min{0, 0};
    SimTime horizon = std::numeric_limits<SimTime>::max();
    for (auto& sp : shards_) {
      PruneDeadTop(*sp);
      if (sp->heap.empty()) continue;
      const HeapKey k{sp->heap.front().time, sp->heap.front().seq};
      if (first == nullptr || k < shard_min) {
        first = sp.get();
        shard_min = k;
      }
      horizon = std::min(horizon, SatAdd(k.time, OutMinLa(sp->id)));
    }
    bool have_global = false;
    HeapKey gk{0, 0};
    if (global_ != nullptr) {
      PruneDeadTop(*global_);
      if (!global_->heap.empty()) {
        have_global = true;
        gk = HeapKey{global_->heap.front().time, global_->heap.front().seq};
      }
    }
    if (first == nullptr && !have_global) break;
    SimTime t0 = first != nullptr ? shard_min.time
                                  : std::numeric_limits<SimTime>::max();
    if (have_global && gk.time < t0) t0 = gk.time;
    if (t0 > deadline) break;
    // Window bound: a canonical KEY, not just a time — a pending global
    // event splits the window exactly at its own stamp, so it observes
    // every shard quiesced up to (and not past) its position in the
    // canonical order.
    HeapKey bound{horizon, 0};
    if (have_global && gk < bound) bound = gk;
    const HeapKey deadline_bound{SatAdd(deadline, 1), 0};
    if (deadline_bound < bound) bound = deadline_bound;
    if (first != nullptr && shard_min < bound) {
      ExecuteWindow(bound, workers);
      MergeWindowLogs();
      ++engine_stats_.windows;
      if (AURORA_METRICS_ON()) {
        M().windows->Add(1);
        AURORA_OBSERVE(M().window_span,
                       static_cast<SimDuration>(
                           std::min(bound.time, SatAdd(deadline, 1)) -
                           shard_min.time));
      }
      const SimTime wnow = std::min(bound.time, deadline);
      for (auto& sp : shards_) {
        if (sp->now < wnow) sp->now = wnow;
      }
      if (global_ != nullptr && global_->now < wnow) global_->now = wnow;
      if (coordinator_now_ < wnow) coordinator_now_ = wnow;
      if (inspector_) inspector_();
      continue;
    }
    // No shard work below the bound: the global event is next. Mails it
    // sends (via worker-shard inserts) and the events those spawn are
    // picked up by the rescan.
    Check(have_global && gk.time <= deadline, "window scheduling invariant");
    ExecTopCanonical(*global_);
  }
  FinalizeNows(deadline);
}

void Simulator::RunShardWindow(Shard& sh, HeapKey bound) {
  ExecContext& tls = TlsCtx();
  const ExecContext saved = tls;
  tls = ExecContext{this, &sh};
  for (;;) {
    PruneDeadTop(sh);
    if (sh.heap.empty()) break;
    const HeapKey key{sh.heap.front().time, sh.heap.front().seq};
    if (!(key < bound)) break;
    std::pop_heap(sh.heap.begin(), sh.heap.end(), HeapGreater{});
    const HeapEntry entry = sh.heap.back();
    sh.heap.pop_back();
    Slot& slot = sh.slots[entry.slot];
    sh.now = entry.time;
    // Fingerprint/trace work is deferred to the barrier merge — the log
    // keeps the canonical stream identical to a serial run while the hot
    // loop stays shard-local.
    sh.window_log.push_back(
        ExecRecord{entry.time, entry.seq, slot.digest, slot.label});
    SimCallback fn = std::move(slot.fn);
    ReleaseSlot(sh, entry.slot);
    --sh.live;
    fn();
  }
  tls = saved;
  if (sh.out_pending != 0) {
    // One release publish for the whole window's cross-shard batch; the
    // barrier drain's acquire load pairs with it.
    sh.out_published.store(sh.out_pending, std::memory_order_release);
  }
}

void Simulator::ExecuteWindow(HeapKey bound, uint32_t workers) {
  // Even the single-threaded window marks workers active: cross-shard
  // schedules must go through mailboxes mid-window regardless of worker
  // count, or same-timestamp events could merge in a round-dependent
  // order (the mailbox defers them to the barrier, where the drain order
  // is canonical).
  if (workers <= 1 || pool_ == nullptr) {
    workers_active_.store(true, std::memory_order_relaxed);
    for (auto& sp : shards_) RunShardWindow(*sp, bound);
    workers_active_.store(false, std::memory_order_relaxed);
    return;
  }
  Pool& p = *pool_;
  uint64_t round;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.bound = bound;
    p.done_shards = 0;
    p.active_shards.store(static_cast<uint32_t>(shards_.size()),
                          std::memory_order_relaxed);
    workers_active_.store(true, std::memory_order_relaxed);
    round = ++p.round;
    // Re-tag the claim cursor with the new round. A worker finishing the
    // previous round performs one more claim attempt before re-waiting on
    // cv_start, without holding mu; its CAS requires the old round tag
    // and therefore fails against this word, so ONLY threads that
    // observed the round broadcast under mu (and hence every round-setup
    // write above, plus the coordinator's barrier-phase mutations of the
    // shard heaps/slabs sequenced before them) can claim a shard of this
    // round.
    p.claim.store(round << kClaimIndexBits, std::memory_order_release);
  }
  p.cv_start.notify_all();
  ProcessWindowShards(round);  // the coordinator is worker 0
  {
    std::unique_lock<std::mutex> lock(p.mu);
    p.cv_done.wait(lock, [&p] {
      return p.done_shards == p.active_shards.load(std::memory_order_relaxed);
    });
    workers_active_.store(false, std::memory_order_relaxed);
  }
}

void Simulator::ProcessWindowShards(uint64_t round) {
  Pool& p = *pool_;
  const uint32_t n = p.active_shards.load(std::memory_order_relaxed);
  const uint64_t tag = round << kClaimIndexBits;
  for (;;) {
    uint64_t cur = p.claim.load(std::memory_order_acquire);
    uint32_t index;
    for (;;) {
      // A claim is valid only while the word still carries our round tag:
      // a straggler from an earlier round observes a foreign tag here and
      // leaves without touching any shard of a round it never
      // synchronized with.
      if ((cur & ~kClaimIndexMask) != tag) return;
      index = static_cast<uint32_t>(cur & kClaimIndexMask);
      if (index >= n) return;
      if (p.claim.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        break;
      }
    }
    RunShardWindow(*shards_[index], p.bound);
    std::lock_guard<std::mutex> lock(p.mu);
    if (++p.done_shards == n) p.cv_done.notify_all();
  }
}

void Simulator::WorkerMain() {
  Pool& p = *pool_;
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(p.mu);
      p.cv_start.wait(lock, [&] { return p.shutdown || p.round != seen; });
      if (p.shutdown) return;
      seen = p.round;
    }
    ProcessWindowShards(seen);
  }
}

void Simulator::EnsurePool(uint32_t worker_threads) {
  if (worker_threads == 0) return;
  if (pool_ != nullptr && pool_->threads.size() == worker_threads) return;
  StopPool();
  pool_ = std::make_unique<Pool>();
  pool_->threads.reserve(worker_threads);
  for (uint32_t i = 0; i < worker_threads; ++i) {
    pool_->threads.emplace_back([this] { WorkerMain(); });
  }
}

void Simulator::StopPool() {
  if (pool_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->shutdown = true;
  }
  pool_->cv_start.notify_all();
  for (auto& t : pool_->threads) t.join();
  pool_.reset();
}

void Simulator::DrainMailboxes() {
  uint64_t batches = 0;
  uint64_t msgs = 0;
  for (auto& sp : shards_) {
    Shard& src = *sp;
    if (src.out_published.load(std::memory_order_acquire) == 0 &&
        src.out_pending == 0) {
      continue;
    }
    // Heap order is by canonical key, so the fixed src-major drain order
    // has no semantic weight — each mail sorts to its stamped position.
    // The sender's stamp base is hoisted per source and OR'd over the
    // batch (amortized stamping); digests are computed on insertion, same
    // as any schedule.
    const uint64_t base = src.stamp_base;
    for (size_t d = 0; d < src.outbox.size(); ++d) {
      std::vector<Mail>& batch = src.outbox[d];
      if (batch.empty()) continue;
      Shard& dst = *shards_[d];
      for (auto& mail : batch) {
        InsertEvent(dst, mail.time, base | mail.counter, std::move(mail.fn),
                    mail.label);
      }
      msgs += batch.size();
      ++batches;
      batch.clear();
    }
    src.out_pending = 0;
    src.out_published.store(0, std::memory_order_relaxed);
  }
  if (msgs != 0) {
    engine_stats_.mailbox_batches += batches;
    engine_stats_.mailbox_msgs += msgs;
    if (AURORA_METRICS_ON()) {
      M().mailbox_batches->Add(batches);
      M().mailbox_msgs->Add(msgs);
    }
  }
}

void Simulator::MergeWindowLogs() {
  // K-way merge of per-shard execution logs by head key, preserving each
  // shard's internal execution order. This equals the canonical serial
  // order: a shard's log head is exactly the event serial execution would
  // pick next from that shard (delay-0 children enter the log only after
  // their parent), so greedy min-over-heads == greedy min-over-pending.
  const bool observe = trace_out_ != nullptr || replay_ != nullptr;
  const size_t n = shards_.size();
  size_t cursor[kMaxShards];
  size_t remaining = 0;
  for (size_t i = 0; i < n; ++i) {
    cursor[i] = 0;
    remaining += shards_[i]->window_log.size();
  }
  while (remaining > 0) {
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (cursor[i] >= shards_[i]->window_log.size()) continue;
      if (best == n) {
        best = i;
        continue;
      }
      const ExecRecord& a = shards_[i]->window_log[cursor[i]];
      const ExecRecord& b = shards_[best]->window_log[cursor[best]];
      if (HeapKey{a.time, a.seq} < HeapKey{b.time, b.seq}) best = i;
    }
    const ExecRecord& r = shards_[best]->window_log[cursor[best]++];
    ++executed_;
    fingerprint_ = Trace::MixFingerprint(fingerprint_, r.digest);
    if (observe) ObserveExecuted(r.time, r.label, r.digest);
    --remaining;
  }
  for (auto& sp : shards_) sp->window_log.clear();
}

size_t Simulator::PendingEvents() const {
  size_t pending = 0;
  for (const auto& sp : shards_) pending += sp->live;
  if (global_ != nullptr) pending += global_->live;
  return pending;
}

size_t Simulator::HeapEntriesForTest() const {
  size_t total = 0;
  for (const auto& sp : shards_) total += sp->heap.size();
  if (global_ != nullptr) total += global_->heap.size();
  return total;
}

size_t Simulator::DeadHeapEntriesForTest() const {
  size_t total = 0;
  for (const auto& sp : shards_) total += sp->dead_in_heap;
  if (global_ != nullptr) total += global_->dead_in_heap;
  return total;
}

}  // namespace aurora::sim
