#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aurora::sim {

namespace {
constexpr size_t kInitialQueueCapacity = 1024;
/// Below this heap size tombstone compaction is not worth the rebuild.
constexpr size_t kCompactMinEntries = 64;
}  // namespace

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  heap_.reserve(kInitialQueueCapacity);
  slots_.reserve(kInitialQueueCapacity);
}

Simulator::~Simulator() = default;

EventId Simulator::Schedule(SimDuration delay, SimCallback fn,
                            const char* label) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn), label);
}

uint32_t Simulator::AllocSlot() {
  if (free_head_ != 0) {
    const uint32_t index = free_head_ - 1;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = SimCallback();  // destroy the closure (and its captures) now
  slot.generation++;        // invalidates outstanding ids and heap entries
  slot.next_free = free_head_;
  free_head_ = index + 1;
}

EventId Simulator::ScheduleAt(SimTime when, SimCallback fn,
                              const char* label) {
  assert(when >= now_);
  const uint32_t index = AllocSlot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.label = label;
  // The fire time is already known, so the full trace digest is computed
  // once here; execution just mixes the stored value into the fingerprint.
  slot.digest = Trace::EventDigest(when, label);
  heap_.push_back(HeapEntry{when, next_seq_++, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
  ++live_count_;
  return (static_cast<EventId>(slot.generation) << 32) |
         static_cast<EventId>(index + 1);
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu) - 1;
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  // A stale id (already fired, already cancelled, or from a recycled slot)
  // fails the generation check and is a clean no-op.
  if (index >= slots_.size() || slots_[index].generation != generation) {
    return;
  }
  ReleaseSlot(index);
  --live_count_;
  ++dead_in_heap_;
  if (dead_in_heap_ > heap_.size() / 2 && heap_.size() >= kCompactMinEntries) {
    CompactHeap();
  }
}

void Simulator::CompactHeap() {
  std::erase_if(heap_, [this](const HeapEntry& e) { return !SlotLive(e); });
  std::make_heap(heap_.begin(), heap_.end(), HeapGreater{});
  dead_in_heap_ = 0;
}

void Simulator::PruneDeadTop() {
  while (!heap_.empty() && !SlotLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
    --dead_in_heap_;
  }
}

void Simulator::ObserveExecuted(SimTime at, const char* label,
                                uint64_t digest) {
  if (trace_out_ != nullptr) {
    trace_out_->events.push_back(TraceEventRecord{at, label, digest});
  }
  if (replay_ != nullptr && replay_divergence_.empty() &&
      replay_cursor_ < replay_->events.size()) {
    const TraceEventRecord& want = replay_->events[replay_cursor_];
    if (want.at != at || want.label != label) {
      replay_divergence_ =
          "replay diverged at event " + std::to_string(replay_cursor_) +
          ": recorded (t=" + std::to_string(want.at) + ", \"" + want.label +
          "\") vs executed (t=" + std::to_string(at) + ", \"" + label + "\")";
    }
    ++replay_cursor_;
  }
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    if (!SlotLive(entry)) {  // cancelled; tombstone reclaimed here
      --dead_in_heap_;
      continue;
    }
    Slot& slot = slots_[entry.slot];
    assert(entry.time >= now_);
    now_ = entry.time;
    ++executed_;
    fingerprint_ = Trace::MixFingerprint(fingerprint_, slot.digest);
    if (trace_out_ != nullptr || replay_ != nullptr) {
      ObserveExecuted(entry.time, slot.label, slot.digest);
    }
    // Move the callback out and recycle the slot BEFORE invoking: the
    // callback may schedule new events (possibly reusing this very slot).
    SimCallback fn = std::move(slot.fn);
    ReleaseSlot(entry.slot);
    --live_count_;
    fn();
    if (inspector_ && executed_ % inspect_every_ == 0) inspector_();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    // Reclaim tombstones at the top so the deadline check sees the event
    // that would actually fire next (a cancelled entry inside the window
    // must not smuggle a live event from beyond the deadline into Step).
    PruneDeadTop();
    if (heap_.empty() || heap_.front().time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace aurora::sim
