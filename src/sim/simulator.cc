#include "src/sim/simulator.h"

#include <cassert>

namespace aurora::sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::Schedule(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace aurora::sim
