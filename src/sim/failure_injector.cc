#include "src/sim/failure_injector.h"

namespace aurora::sim {

FailureInjector::FailureInjector(Simulator* sim, Network* network,
                                 FailureModel model)
    : sim_(sim), network_(network), model_(model),
      rng_(sim->rng().Fork()) {}

void FailureInjector::Start(std::vector<NodeId> nodes, std::vector<AzId> azs) {
  running_ = true;
  ++generation_;
  for (NodeId n : nodes) ScheduleNodeFailure(n);
  if (model_.az_mttf > 0) {
    for (AzId az : azs) ScheduleAzFailure(az);
  }
}

void FailureInjector::Stop() {
  running_ = false;
  ++generation_;
}

void FailureInjector::ScheduleNodeFailure(NodeId node) {
  const auto delay = static_cast<SimDuration>(
      rng_.NextExponential(static_cast<double>(model_.node_mttf)));
  const uint64_t gen = generation_;
  sim_->Schedule(delay, [this, node, gen]() {
    if (!running_ || gen != generation_) return;
    if (network_->IsUp(node)) {
      network_->Crash(node);
      ++node_failures_;
      const auto repair = static_cast<SimDuration>(
          rng_.NextExponential(static_cast<double>(model_.node_mttr)));
      sim_->Schedule(repair, [this, node, gen]() {
        if (!running_ || gen != generation_) return;
        network_->Restart(node);
      });
    }
    ScheduleNodeFailure(node);
  });
}

void FailureInjector::ScheduleAzFailure(AzId az) {
  const auto delay = static_cast<SimDuration>(
      rng_.NextExponential(static_cast<double>(model_.az_mttf)));
  const uint64_t gen = generation_;
  sim_->Schedule(delay, [this, az, gen]() {
    if (!running_ || gen != generation_) return;
    network_->FailAz(az);
    ++az_failures_;
    sim_->Schedule(model_.az_mttr, [this, az, gen]() {
      if (gen != generation_) return;
      network_->RestoreAz(az);
    });
    ScheduleAzFailure(az);
  });
}

void FailureInjector::CrashNodeAt(SimTime when, NodeId node) {
  sim_->ScheduleAt(when, [this, node]() { network_->Crash(node); });
}

void FailureInjector::RestartNodeAt(SimTime when, NodeId node) {
  sim_->ScheduleAt(when, [this, node]() { network_->Restart(node); });
}

void FailureInjector::FailAzAt(SimTime when, AzId az, SimDuration outage) {
  sim_->ScheduleAt(when, [this, az, outage]() {
    network_->FailAz(az);
    ++az_failures_;
    sim_->Schedule(outage, [this, az]() { network_->RestoreAz(az); });
  });
}

void FailureInjector::SlowNodeAt(SimTime when, NodeId node, double factor,
                                 SimDuration duration) {
  sim_->ScheduleAt(when, [this, node, factor, duration]() {
    network_->SetNodeSlowdown(node, factor);
    sim_->Schedule(duration,
                   [this, node]() { network_->SetNodeSlowdown(node, 1.0); });
  });
}

}  // namespace aurora::sim
