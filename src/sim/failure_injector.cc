#include "src/sim/failure_injector.h"

// Every injector timer is a global event: the callbacks mutate cross-shard
// network state (liveness, AZ status, slowdowns), which the sharded engine
// only permits at window barriers with all workers quiesced. With zero or
// one worker shards ScheduleGlobal degenerates to plain Schedule, keeping
// legacy runs bit-identical.

namespace aurora::sim {

FailureInjector::FailureInjector(Simulator* sim, Network* network,
                                 FailureModel model)
    : sim_(sim), network_(network), model_(model),
      rng_(sim->rng().Fork()) {}

void FailureInjector::Start(std::vector<NodeId> nodes, std::vector<AzId> azs) {
  running_ = true;
  ++generation_;
  for (NodeId n : nodes) ScheduleNodeFailure(n);
  if (model_.az_mttf > 0) {
    for (AzId az : azs) ScheduleAzFailure(az);
  }
}

void FailureInjector::Stop() {
  running_ = false;
  ++generation_;
}

SimDuration FailureInjector::Draw(const char* kind, uint64_t subject,
                                  SimDuration mean) {
  if (replay_ != nullptr) {
    if (replay_cursor_ < replay_->decisions.size() &&
        replay_->decisions[replay_cursor_].kind == kind) {
      return replay_->decisions[replay_cursor_++].value_us;
    }
    ++replay_mismatches_;  // underrun or drift; fall back to the RNG
  }
  const auto value = static_cast<SimDuration>(
      rng_.NextExponential(static_cast<double>(mean)));
  if (record_ != nullptr) {
    record_->decisions.push_back(InjectorDecision{kind, subject, value});
  }
  return value;
}

void FailureInjector::ScheduleNodeFailure(NodeId node) {
  const SimDuration delay = Draw("node_fail_delay", node, model_.node_mttf);
  const uint64_t gen = generation_;
  sim_->ScheduleGlobal(delay, [this, node, gen]() {
    if (!running_ || gen != generation_) return;
    if (network_->IsUp(node)) {
      network_->Crash(node);
      ++node_failures_;
      const SimDuration repair =
          Draw("node_repair_delay", node, model_.node_mttr);
      sim_->ScheduleGlobal(repair, [this, node, gen]() {
        if (!running_ || gen != generation_) return;
        network_->Restart(node);
      }, "inj.node_repair");
    }
    ScheduleNodeFailure(node);
  }, "inj.node_fail");
}

void FailureInjector::ScheduleAzFailure(AzId az) {
  const SimDuration delay = Draw("az_fail_delay", az, model_.az_mttf);
  const uint64_t gen = generation_;
  sim_->ScheduleGlobal(delay, [this, az, gen]() {
    if (!running_ || gen != generation_) return;
    network_->FailAz(az);
    ++az_failures_;
    sim_->ScheduleGlobal(model_.az_mttr, [this, az, gen]() {
      if (gen != generation_) return;
      network_->RestoreAz(az);
    }, "inj.az_restore");
    ScheduleAzFailure(az);
  }, "inj.az_fail");
}

void FailureInjector::CrashNodeAt(SimTime when, NodeId node) {
  sim_->ScheduleGlobalAt(when, [this, node]() { network_->Crash(node); },
                   "inj.script_crash");
}

void FailureInjector::RestartNodeAt(SimTime when, NodeId node) {
  sim_->ScheduleGlobalAt(when, [this, node]() { network_->Restart(node); },
                   "inj.script_restart");
}

void FailureInjector::FailAzAt(SimTime when, AzId az, SimDuration outage) {
  sim_->ScheduleGlobalAt(when, [this, az, outage]() {
    network_->FailAz(az);
    ++az_failures_;
    sim_->ScheduleGlobal(outage, [this, az]() { network_->RestoreAz(az); },
                   "inj.script_az_restore");
  }, "inj.script_az_fail");
}

void FailureInjector::Flap(NodeId node, SimDuration period, int count) {
  if (count <= 0) return;
  // Each dwell is one Draw() in the injector's single decision stream:
  // a recorded run replays the exact same flap rhythm, and a shrunk
  // subset falls back to the forked RNG (counted in replay_mismatches)
  // without perturbing draws that still match.
  const SimDuration down_delay = Draw("flap_down_delay", node, period);
  const uint64_t gen = generation_;
  sim_->ScheduleGlobal(down_delay, [this, node, period, count, gen]() {
    if (gen != generation_) return;
    // Only restart what this cycle crashed: if another fault (scripted
    // crash, AZ outage, a concurrent schedule op) already has the node
    // down, resurrecting it here would cut that fault's outage short and
    // desynchronize the harness's crash bookkeeping.
    const bool crashed_here = network_->IsUp(node);
    if (crashed_here) {
      network_->Crash(node);
      ++node_failures_;
    }
    const SimDuration up_delay = Draw("flap_up_delay", node, period);
    sim_->ScheduleGlobal(up_delay, [this, node, period, count, gen,
                              crashed_here]() {
      if (gen != generation_) return;
      if (crashed_here) network_->Restart(node);
      Flap(node, period, count - 1);
    }, "inj.flap_up");
  }, "inj.flap_down");
}

void FailureInjector::SlowNodeAt(SimTime when, NodeId node, double factor,
                                 SimDuration duration) {
  sim_->ScheduleGlobalAt(when, [this, node, factor, duration]() {
    network_->SetNodeSlowdown(node, factor);
    sim_->ScheduleGlobal(duration,
                   [this, node]() { network_->SetNodeSlowdown(node, 1.0); },
                   "inj.slow_end");
  }, "inj.slow_begin");
}

}  // namespace aurora::sim
