// Move-only small-buffer callable for the event engine's hot path.
//
// std::function costs one heap allocation per stored closure plus a copy-
// constructible requirement that forces shared_ptr wrappers around move-only
// captures. The simulator schedules hundreds of thousands of closures per
// benchmark run, so both costs are paid on every event. MoveFunc stores the
// common capture sizes inline in the event slab slot; closures too large for
// the inline buffer fall back to a per-thread size-class pool (a freelist
// beats the general-purpose allocator and keeps hot closure blocks
// cache-resident). The pools are thread_local, which stays correct under
// the parallel sharded engine: blocks are plain operator-new memory, so a
// closure mailed across shards (allocated on one worker, destroyed on
// another) simply migrates its block to the destroyer's freelist — no
// shared freelist, no locks, no ownership requirement. The batched
// cross-shard outboxes lean on the same property: a window's worth of
// mailed MoveFuncs sits in the source shard's per-destination arena
// until the barrier flush, then each block is freed on whichever worker
// later executes the destination shard.
//
// MoveFunc is move-only by design: the engine moves each callback exactly
// once (slab slot -> stack) before invoking it, and move-only storage lets
// callers capture move-only state (response payloads, reply continuations)
// without refcounting detours.

#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace aurora::sim {

namespace detail {

/// Size-class granularity and class count for pooled closure blocks:
/// 64, 128, ..., 512 bytes. Larger closures use the global allocator.
inline constexpr size_t kPoolGranule = 64;
inline constexpr size_t kPoolClasses = 8;

/// Per-thread freelists of closure blocks. The wrapper's destructor frees
/// parked blocks so sanitized runs see no leaked memory at exit.
struct ClosurePool {
  std::array<std::vector<void*>, kPoolClasses> free_lists;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  ~ClosurePool() {
    for (auto& list : free_lists) {
      for (void* block : list) ::operator delete(block);
    }
  }
};

inline ClosurePool& Pool() {
  thread_local ClosurePool pool;
  return pool;
}

inline void* PoolAlloc(size_t bytes) {
  if (bytes > kPoolGranule * kPoolClasses) return ::operator new(bytes);
  const size_t cls = (bytes + kPoolGranule - 1) / kPoolGranule - 1;
  auto& pool = Pool();
  auto& list = pool.free_lists[cls];
  if (!list.empty()) {
    void* block = list.back();
    list.pop_back();
    pool.pool_hits++;
    return block;
  }
  pool.pool_misses++;
  return ::operator new((cls + 1) * kPoolGranule);
}

inline void PoolFree(void* block, size_t bytes) {
  if (bytes > kPoolGranule * kPoolClasses) {
    ::operator delete(block);
    return;
  }
  const size_t cls = (bytes + kPoolGranule - 1) / kPoolGranule - 1;
  Pool().free_lists[cls].push_back(block);
}

}  // namespace detail

template <typename Sig, size_t InlineBytes = 120>
class MoveFunc;

template <typename R, typename... Args, size_t InlineBytes>
class MoveFunc<R(Args...), InlineBytes> {
 public:
  MoveFunc() = default;

  // NOLINTNEXTLINE(google-explicit-constructor): callables convert freely,
  // like std::function, so every Schedule(..., [] {...}) site keeps working.
  template <typename F, typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, MoveFunc> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  MoveFunc(F&& f) {
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::ops;
    } else {
      void* block = detail::PoolAlloc(sizeof(D));
      D* obj = ::new (block) D(std::forward<F>(f));
      std::memcpy(storage_, &obj, sizeof(obj));
      ops_ = &HeapModel<D>::ops;
    }
  }

  MoveFunc(MoveFunc&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  MoveFunc& operator=(MoveFunc&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  MoveFunc(const MoveFunc&) = delete;
  MoveFunc& operator=(const MoveFunc&) = delete;

  ~MoveFunc() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    assert(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs into `dst` and destroys `src` (heap-stored targets
    /// just carry the pointer over). Must not throw: the engine relies on
    /// noexcept relocation when the slab vector grows.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static F* InlineTarget(void* storage) {
    return std::launder(reinterpret_cast<F*>(storage));
  }

  template <typename F>
  struct InlineModel {
    static R Invoke(void* storage, Args&&... args) {
      return (*InlineTarget<F>(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      ::new (dst) F(std::move(*InlineTarget<F>(src)));
      InlineTarget<F>(src)->~F();
    }
    static void Destroy(void* storage) { InlineTarget<F>(storage)->~F(); }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  struct HeapModel {
    static F* Target(void* storage) {
      F* obj;
      std::memcpy(&obj, storage, sizeof(obj));
      return obj;
    }
    static R Invoke(void* storage, Args&&... args) {
      return (*Target(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      std::memcpy(dst, src, sizeof(F*));
    }
    static void Destroy(void* storage) {
      F* obj = Target(storage);
      obj->~F();
      detail::PoolFree(obj, sizeof(F));
    }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

/// The engine's event callback: runs once, then the slot is recycled.
using SimCallback = MoveFunc<void()>;

}  // namespace aurora::sim
