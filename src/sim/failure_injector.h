// Stochastic and scripted failure injection.
//
// Drives the Figure-1 availability experiment (independent segment failures
// plus correlated AZ failures) and the fault-tolerance integration tests.
// The paper's durability argument (§2.1) is about the joint probability of
// two independent segment failures plus an AZ failure within one
// detect-and-repair window; this injector produces exactly that process.

#pragma once

#include <functional>
#include <vector>

#include "src/common/random.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace aurora::sim {

/// Parameters of the background failure process.
struct FailureModel {
  /// Mean time to failure per node (exponential inter-arrival).
  SimDuration node_mttf = 3600LL * kSecond;
  /// Mean time to detect + repair a failed node.
  SimDuration node_mttr = 10 * kSecond;
  /// Mean time between whole-AZ failures (0 disables them).
  SimDuration az_mttf = 0;
  /// AZ outage duration.
  SimDuration az_mttr = 60 * kSecond;
};

/// Drives crash/repair events against a Network according to a
/// FailureModel, or via explicit scripted calls.
class FailureInjector {
 public:
  FailureInjector(Simulator* sim, Network* network, FailureModel model = {});

  /// Starts the background Poisson failure process for `nodes` and
  /// (optionally) the AZ failure process for `azs`.
  void Start(std::vector<NodeId> nodes, std::vector<AzId> azs = {});
  void Stop();

  /// Scripted faults.
  void CrashNodeAt(SimTime when, NodeId node);
  void RestartNodeAt(SimTime when, NodeId node);
  void FailAzAt(SimTime when, AzId az, SimDuration outage);
  void SlowNodeAt(SimTime when, NodeId node, double factor,
                  SimDuration duration);

  /// Flapping node: `count` crash→restart cycles with exponentially drawn
  /// down/up dwell times of mean `period`, ending with the node UP. The
  /// nastiest case for eager repair — the suspect keeps coming back, so
  /// transitions must keep reverting (Figure 5's roll-back edge). Dwell
  /// draws go through Draw(), so they are recorded to / replayed from an
  /// attached trace like the background process and shrink with it.
  void Flap(NodeId node, SimDuration period, int count);

  uint64_t node_failures() const { return node_failures_; }
  uint64_t az_failures() const { return az_failures_; }

  // -- Decision capture & replay (src/sim/trace.h) -------------------------
  //
  // Every stochastic draw of the background process (failure delay, repair
  // delay, AZ outage arrival) is a Decision. Recording appends them to a
  // trace; a replaying injector consumes the recorded sequence instead of
  // rolling its RNG, so a captured failure schedule re-executes exactly.
  // Scripted faults (CrashNodeAt etc.) are already deterministic and are
  // not recorded.

  /// Appends every subsequent decision to `trace` (not owned; nullptr
  /// stops recording).
  void RecordDecisionsTo(Trace* trace) { record_ = trace; }

  /// Consumes `trace`'s recorded decisions (in order) instead of the RNG.
  /// Once the recording is exhausted the injector falls back to its RNG —
  /// the replayed window is exact, anything past the capture is best
  /// effort — and counts the underrun in replay_mismatches().
  void ReplayDecisionsFrom(const Trace* trace) {
    replay_ = trace;
    replay_cursor_ = 0;
  }

  /// Draws served from the recording so far.
  uint64_t replayed_decisions() const { return replay_cursor_; }
  /// Draws where the recording ran out or the decision kind disagreed
  /// (schedule drift between capture and replay).
  uint64_t replay_mismatches() const { return replay_mismatches_; }

 private:
  void ScheduleNodeFailure(NodeId node);
  void ScheduleAzFailure(AzId az);

  /// One stochastic draw: exponential with `mean`, recorded to / replayed
  /// from the attached trace under (`kind`, `subject`).
  SimDuration Draw(const char* kind, uint64_t subject, SimDuration mean);

  Simulator* sim_;
  Network* network_;
  FailureModel model_;
  Rng rng_;
  bool running_ = false;
  uint64_t generation_ = 0;  // invalidates scheduled background events
  uint64_t node_failures_ = 0;
  uint64_t az_failures_ = 0;

  Trace* record_ = nullptr;
  const Trace* replay_ = nullptr;
  size_t replay_cursor_ = 0;
  uint64_t replay_mismatches_ = 0;
};

}  // namespace aurora::sim
