// Stochastic and scripted failure injection.
//
// Drives the Figure-1 availability experiment (independent segment failures
// plus correlated AZ failures) and the fault-tolerance integration tests.
// The paper's durability argument (§2.1) is about the joint probability of
// two independent segment failures plus an AZ failure within one
// detect-and-repair window; this injector produces exactly that process.

#pragma once

#include <functional>
#include <vector>

#include "src/common/random.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace aurora::sim {

/// Parameters of the background failure process.
struct FailureModel {
  /// Mean time to failure per node (exponential inter-arrival).
  SimDuration node_mttf = 3600LL * kSecond;
  /// Mean time to detect + repair a failed node.
  SimDuration node_mttr = 10 * kSecond;
  /// Mean time between whole-AZ failures (0 disables them).
  SimDuration az_mttf = 0;
  /// AZ outage duration.
  SimDuration az_mttr = 60 * kSecond;
};

/// Drives crash/repair events against a Network according to a
/// FailureModel, or via explicit scripted calls.
class FailureInjector {
 public:
  FailureInjector(Simulator* sim, Network* network, FailureModel model = {});

  /// Starts the background Poisson failure process for `nodes` and
  /// (optionally) the AZ failure process for `azs`.
  void Start(std::vector<NodeId> nodes, std::vector<AzId> azs = {});
  void Stop();

  /// Scripted faults.
  void CrashNodeAt(SimTime when, NodeId node);
  void RestartNodeAt(SimTime when, NodeId node);
  void FailAzAt(SimTime when, AzId az, SimDuration outage);
  void SlowNodeAt(SimTime when, NodeId node, double factor,
                  SimDuration duration);

  uint64_t node_failures() const { return node_failures_; }
  uint64_t az_failures() const { return az_failures_; }

 private:
  void ScheduleNodeFailure(NodeId node);
  void ScheduleAzFailure(AzId az);

  Simulator* sim_;
  Network* network_;
  FailureModel model_;
  Rng rng_;
  bool running_ = false;
  uint64_t generation_ = 0;  // invalidates scheduled background events
  uint64_t node_failures_ = 0;
  uint64_t az_failures_ = 0;
};

}  // namespace aurora::sim
