#include "src/sim/trace.h"

#include <cstdio>
#include <string>

namespace aurora::sim {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMixByte(uint64_t h, uint8_t b) { return (h ^ b) * kFnvPrime; }

uint64_t FnvMixU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = FnvMixByte(h, static_cast<uint8_t>(v >> (8 * i)));
  }
  return h;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Locates the raw value token following `"key":` in a single JSON line.
/// Returns the [begin, end) range of the token (string tokens include the
/// quotes). Flat single-line records only — all this file ever emits.
bool FindValueToken(const std::string& line, const char* key, size_t* begin,
                    size_t* end) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t i = at + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return false;
  *begin = i;
  if (line[i] == '"') {
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') ++i;
      ++i;
    }
    if (i >= line.size()) return false;
    *end = i + 1;
    return true;
  }
  if (line[i] == '[') {
    const size_t close = line.find(']', i);
    if (close == std::string::npos) return false;
    *end = close + 1;
    return true;
  }
  while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
  *end = i;
  return *end > *begin;
}

bool GetString(const std::string& line, const char* key, std::string* out) {
  size_t begin = 0, end = 0;
  if (!FindValueToken(line, key, &begin, &end)) return false;
  if (line[begin] != '"' || end - begin < 2) return false;
  out->clear();
  for (size_t i = begin + 1; i + 1 < end; ++i) {
    if (line[i] == '\\' && i + 2 < end) ++i;
    out->push_back(line[i]);
  }
  return true;
}

bool GetUint(const std::string& line, const char* key, uint64_t* out) {
  size_t begin = 0, end = 0;
  if (!FindValueToken(line, key, &begin, &end)) return false;
  *out = std::stoull(line.substr(begin, end - begin));
  return true;
}

bool GetInt(const std::string& line, const char* key, int64_t* out) {
  size_t begin = 0, end = 0;
  if (!FindValueToken(line, key, &begin, &end)) return false;
  *out = std::stoll(line.substr(begin, end - begin));
  return true;
}

bool GetIntArray(const std::string& line, const char* key,
                 std::vector<int64_t>* out) {
  size_t begin = 0, end = 0;
  if (!FindValueToken(line, key, &begin, &end)) return false;
  if (line[begin] != '[') return false;
  out->clear();
  size_t i = begin + 1;
  while (i < end - 1) {
    size_t consumed = 0;
    out->push_back(std::stoll(line.substr(i, end - 1 - i), &consumed));
    i += consumed;
    while (i < end - 1 && (line[i] == ',' || line[i] == ' ')) ++i;
  }
  return true;
}

}  // namespace

uint64_t Trace::EventDigest(SimTime at, const char* label) {
  uint64_t h = FnvMixU64(kFnvOffset, static_cast<uint64_t>(at));
  for (const char* p = label; p != nullptr && *p != '\0'; ++p) {
    h = FnvMixByte(h, static_cast<uint8_t>(*p));
  }
  return h;
}

uint64_t Trace::MixFingerprint(uint64_t fingerprint, uint64_t digest) {
  return FnvMixU64(fingerprint == 0 ? kFnvOffset : fingerprint, digest);
}

void Trace::Clear() {
  seed = 0;
  scenario.clear();
  ops.clear();
  decisions.clear();
  events.clear();
  summary = Summary{};
}

std::string Trace::Serialize() const {
  std::string out;
  // Rough pre-size: ~72 bytes per event line dominates.
  out.reserve(256 + ops.size() * 96 + decisions.size() * 96 +
              events.size() * 80);
  out += "{\"kind\":\"header\",\"version\":" +
         std::to_string(kTraceFormatVersion) +
         ",\"seed\":" + std::to_string(seed) + ",\"scenario\":";
  AppendEscaped(&out, scenario);
  out += ",\"ops\":" + std::to_string(ops.size()) +
         ",\"decisions\":" + std::to_string(decisions.size()) +
         ",\"events\":" + std::to_string(events.size()) + "}\n";
  for (const FaultOp& op : ops) {
    out += "{\"kind\":\"op\",\"op\":";
    AppendEscaped(&out, op.kind);
    out += ",\"args\":[";
    for (size_t i = 0; i < op.args.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(op.args[i]);
    }
    out += "],\"advance_us\":" + std::to_string(op.advance_us) + "}\n";
  }
  for (const InjectorDecision& d : decisions) {
    out += "{\"kind\":\"decision\",\"what\":";
    AppendEscaped(&out, d.kind);
    out += ",\"subject\":" + std::to_string(d.subject) +
           ",\"value_us\":" + std::to_string(d.value_us) + "}\n";
  }
  uint64_t index = 0;
  for (const TraceEventRecord& ev : events) {
    out += "{\"kind\":\"event\",\"i\":" + std::to_string(index++) +
           ",\"at_us\":" + std::to_string(ev.at) + ",\"label\":";
    AppendEscaped(&out, ev.label);
    out += ",\"digest\":" + std::to_string(ev.digest) + "}\n";
  }
  if (summary.present) {
    out += "{\"kind\":\"summary\",\"fingerprint\":" +
           std::to_string(summary.fingerprint) +
           ",\"vcl\":" + std::to_string(summary.vcl) +
           ",\"vdl\":" + std::to_string(summary.vdl) +
           ",\"events\":" + std::to_string(summary.executed_events) +
           ",\"end_us\":" + std::to_string(summary.end_time) + "}\n";
  }
  return out;
}

Result<Trace> Trace::Parse(const std::string& text) {
  Trace trace;
  bool saw_header = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    std::string kind;
    if (!GetString(line, "kind", &kind)) {
      return Status::Corruption("trace line " + std::to_string(line_no) +
                                ": missing \"kind\"");
    }
    if (kind == "header") {
      uint64_t version = 0;
      if (!GetUint(line, "version", &version) ||
          version != kTraceFormatVersion) {
        return Status::NotSupported(
            "trace version " + std::to_string(version) + " (this build reads " +
            std::to_string(kTraceFormatVersion) + ")");
      }
      if (!GetUint(line, "seed", &trace.seed) ||
          !GetString(line, "scenario", &trace.scenario)) {
        return Status::Corruption("trace header: missing seed/scenario");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::Corruption("trace line " + std::to_string(line_no) +
                                ": record before header");
    }
    if (kind == "op") {
      FaultOp op;
      int64_t advance = 0;
      if (!GetString(line, "op", &op.kind) ||
          !GetIntArray(line, "args", &op.args) ||
          !GetInt(line, "advance_us", &advance)) {
        return Status::Corruption("trace line " + std::to_string(line_no) +
                                  ": malformed op record");
      }
      op.advance_us = advance;
      trace.ops.push_back(std::move(op));
    } else if (kind == "decision") {
      InjectorDecision d;
      if (!GetString(line, "what", &d.kind) ||
          !GetUint(line, "subject", &d.subject) ||
          !GetInt(line, "value_us", &d.value_us)) {
        return Status::Corruption("trace line " + std::to_string(line_no) +
                                  ": malformed decision record");
      }
      trace.decisions.push_back(std::move(d));
    } else if (kind == "event") {
      TraceEventRecord ev;
      int64_t at = 0;
      if (!GetInt(line, "at_us", &at) ||
          !GetString(line, "label", &ev.label) ||
          !GetUint(line, "digest", &ev.digest)) {
        return Status::Corruption("trace line " + std::to_string(line_no) +
                                  ": malformed event record");
      }
      ev.at = at;
      if (ev.digest != EventDigest(ev.at, ev.label.c_str())) {
        return Status::Corruption("trace line " + std::to_string(line_no) +
                                  ": event digest mismatch (edited trace?)");
      }
      trace.events.push_back(std::move(ev));
    } else if (kind == "summary") {
      int64_t end_us = 0;
      if (!GetUint(line, "fingerprint", &trace.summary.fingerprint) ||
          !GetUint(line, "vcl", &trace.summary.vcl) ||
          !GetUint(line, "vdl", &trace.summary.vdl) ||
          !GetUint(line, "events", &trace.summary.executed_events) ||
          !GetInt(line, "end_us", &end_us)) {
        return Status::Corruption("trace line " + std::to_string(line_no) +
                                  ": malformed summary record");
      }
      trace.summary.end_time = end_us;
      trace.summary.present = true;
    } else {
      return Status::NotSupported("trace line " + std::to_string(line_no) +
                                  ": unknown record kind \"" + kind + "\"");
    }
  }
  if (!saw_header) return Status::Corruption("trace has no header line");
  return trace;
}

Status Trace::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string body = Serialize();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<Trace> Trace::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string body;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  return Parse(body);
}

}  // namespace aurora::sim
