// Simulated datacenter network: AZ topology, per-link latency
// distributions, partitions, node liveness, and traffic accounting.
//
// Matches the environment the paper assumes: AZs are "connected to other
// AZs through low-latency networking links, but isolated for most faults"
// (§1). Cross-AZ links are slower than intra-AZ links; an AZ failure takes
// down every node placed in it at once.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace aurora::sim {

/// Receives crash/restart notifications so protocol actors can drop
/// volatile state (the paper's "local ephemeral state", §2.4).
class NodeLifecycleListener {
 public:
  virtual ~NodeLifecycleListener() = default;
  virtual void OnCrash() {}
  virtual void OnRestart() {}
};

/// Per-message network accounting, used by the network-traffic experiment
/// (C8: log-only writes vs page shipping).
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
};

/// Configuration for link latency. Defaults approximate intra-region EC2:
/// ~150us intra-AZ, ~600us cross-AZ medians with lognormal jitter and a
/// small heavy tail.
struct NetworkOptions {
  LatencyDistribution intra_az =
      LatencyDistribution::LogNormal(150, 0.35, 0.01, 8.0);
  LatencyDistribution cross_az =
      LatencyDistribution::LogNormal(600, 0.35, 0.01, 8.0);
  /// Simulated NIC bandwidth; serialization delay = bytes / bandwidth.
  /// 0 disables the bandwidth term.
  double bytes_per_us = 1250.0;  // ~10 Gbit/s
  /// Deliver messages between a given (src, dst) pair in send order, like
  /// a TCP connection. The replication stream (§3.3) relies on in-order
  /// MTR-then-VDL delivery.
  bool fifo_links = true;
  /// Hard floor on any non-loopback hop, applied after slowdown/bandwidth
  /// terms. In sharded mode this is the engine's conservative lookahead
  /// (Network::MinCrossNodeLatency): no message between distinct nodes
  /// arrives sooner, so cross-shard deliveries always clear the window
  /// bound. The default keeps latency sampling bit-identical to the
  /// pre-sharding model (which already clamped at 1us).
  SimDuration min_latency_us = 1;
  /// Per-link-class floors, combined with min_latency_us the same way
  /// (max wins, after slowdowns). 0 disables a class floor, keeping the
  /// sampling bit-identical to the single-floor model. These are what the
  /// pairwise lookahead matrix is derived from: a (src, dst) shard pair
  /// whose node pairs are all cross-AZ is bounded below by the cross-AZ
  /// floor, so its lookahead entry — and every window that pair would
  /// otherwise throttle — widens beyond the global minimum hop.
  SimDuration intra_az_floor_us = 0;
  SimDuration cross_az_floor_us = 0;
};

/// The network fabric. Nodes register with an AZ placement; sends sample
/// link latency, honor partitions and liveness, and account traffic.
class Network {
 public:
  Network(Simulator* sim, NetworkOptions options = {});

  /// Registers `node` in `az`. Listener may be null; it is invoked on
  /// Crash/Restart transitions.
  void RegisterNode(NodeId node, AzId az,
                    NodeLifecycleListener* listener = nullptr);

  /// Re-points the lifecycle listener (used when an actor is rebuilt after
  /// a crash).
  void SetListener(NodeId node, NodeLifecycleListener* listener);

  bool IsRegistered(NodeId node) const;
  AzId AzOf(NodeId node) const;

  /// Pins `node`'s event stream to a simulator shard: deliveries to it and
  /// its lifecycle re-arms execute there. Call during topology setup,
  /// before traffic flows. Defaults to shard 0 (the unsharded engine).
  void SetNodeShard(NodeId node, ShardKey shard);
  ShardKey ShardOf(NodeId node) const;

  /// Creates the per-shard network lanes (rng / stats / FIFO link clocks)
  /// for the simulator's configured shard count. Call once after
  /// ConfigureShards, before actors fork RNGs — lane forks draw from the
  /// network's own rng, and with a single shard nothing forks (the run
  /// stays bit-identical to the unsharded engine).
  void PrepareShardLanes();

  /// The guaranteed minimum latency of a hop of the given link class
  /// (after slowdowns; loopback hops are exempt and same-shard anyway).
  SimDuration HopFloor(bool cross_az) const {
    const SimDuration class_floor = cross_az ? options_.cross_az_floor_us
                                             : options_.intra_az_floor_us;
    return std::max<SimDuration>(
        1, std::max(options_.min_latency_us, class_floor));
  }

  /// The guaranteed minimum latency of any hop between distinct nodes —
  /// the engine's conservative lookahead (Simulator::SetLookahead).
  SimDuration MinCrossNodeLatency() const {
    return std::min(HopFloor(false), HopFloor(true));
  }

  /// Switches the engine to the pairwise lookahead matrix (DESIGN.md §9):
  /// every (src, dst) shard pair starts at the widest class floor and
  /// node registrations lower it to the tightest link class actually
  /// connecting the pair — so the matrix is conservative by construction
  /// for network traffic, and non-network cross-shard hops must size
  /// their delay with Simulator::LookaheadTo. Call after ConfigureShards
  /// + PrepareShardLanes, before traffic flows; nodes registered or
  /// re-sharded later keep the matrix current automatically (lowering
  /// entries is always safe mid-run, at barriers).
  void EnablePairwiseLookahead();

  bool IsUp(NodeId node) const;
  /// Crashes `node`: pending deliveries to it are dropped and its listener
  /// is notified.
  void Crash(NodeId node);
  void Restart(NodeId node);

  /// Fails / restores an entire AZ (crashes every node placed there).
  void FailAz(AzId az);
  void RestoreAz(AzId az);
  bool IsAzFailed(AzId az) const;

  /// Symmetric pairwise partition control.
  void Partition(NodeId a, NodeId b, bool blocked);
  bool IsPartitioned(NodeId a, NodeId b) const;

  /// Multiplies sampled latency for traffic to/from `node` ("slow node" /
  /// "busy node" injection for the hedged-read experiment, §3.1).
  void SetNodeSlowdown(NodeId node, double factor);
  double NodeSlowdown(NodeId node) const;

  /// Sends `bytes` from `from` to `to`; `deliver` runs after sampled
  /// latency if both endpoints are alive at delivery time and the pair is
  /// not partitioned. Messages in flight when the destination crashes are
  /// dropped (at-most-once delivery, §2.3: "any given write may be lost
  /// for any reason"). Templated on the delivery callable so the closure
  /// moves straight into the event slab — no std::function heap hop on the
  /// per-message hot path.
  /// Deliveries execute on the destination node's shard (ScheduleOn), so
  /// an actor's inbound events stay on its own event stream; in unsharded
  /// mode that degenerates to the classic Schedule path bit-identically.
  template <typename F>
  void Send(NodeId from, NodeId to, uint64_t bytes, F&& deliver) {
    const SendPlan plan = PlanSend(from, to, bytes);
    if (!plan.deliverable) return;
    sim_->ScheduleOn(
        plan.dst_shard, plan.latency,
        [this, to, bytes, incarnation = plan.dst_incarnation,
         deliver = std::forward<F>(deliver)]() mutable {
          if (Arrives(to, incarnation, bytes)) deliver();
        },
        "net.deliver");
  }

  /// Samples the one-way latency the next Send(from, to) would see.
  SimDuration SampleLatency(NodeId from, NodeId to, uint64_t bytes);

  /// Aggregated over all lanes; stable only outside parallel windows.
  const NetworkStats& stats() const;
  void ResetStats();

  Simulator* simulator() { return sim_; }

 private:
  struct NodeState {
    AzId az = 0;
    ShardKey shard = 0;
    bool up = true;
    // Incremented on each crash; in-flight deliveries capture the value at
    // send time and are dropped if it changed ("the socket died").
    uint64_t incarnation = 0;
    double slowdown = 1.0;
    NodeLifecycleListener* listener = nullptr;
  };

  /// Per-execution-context network state. Sends mutate the lane of the
  /// shard they execute on (deliveries likewise), so parallel windows
  /// never contend: lane rng streams and FIFO link clocks advance in each
  /// shard's canonical event order, identical serial or parallel. Lane 0
  /// serves shard 0 plus every context-less call (external drivers,
  /// global events) — with one shard it is the whole legacy state.
  struct Lane {
    explicit Lane(Rng rng_in) : rng(rng_in) {}
    Rng rng;
    NetworkStats stats;
    // Per-directional-link last scheduled delivery time (FIFO ordering).
    std::unordered_map<uint64_t, SimTime> link_clock;
  };
  Lane& CurrentLane();

  /// Send-time accounting + routing decision (non-template half of Send).
  struct SendPlan {
    bool deliverable = false;
    SimDuration latency = 0;
    uint64_t dst_incarnation = 0;
    ShardKey dst_shard = 0;
  };
  SendPlan PlanSend(NodeId from, NodeId to, uint64_t bytes);
  /// Delivery-time liveness check + accounting; true if `deliver` runs.
  bool Arrives(NodeId to, uint64_t dst_incarnation, uint64_t bytes);

  SimDuration SampleLatencyInLane(Lane& lane, NodeId from, NodeId to,
                                  uint64_t bytes);

  /// Lowers the pairwise matrix entries of `node`'s shard against every
  /// other registered node's shard to the connecting link-class floor.
  void LowerLookaheadForNode(NodeId node);

  uint64_t PairKey(NodeId a, NodeId b) const;

  Simulator* sim_;
  NetworkOptions options_;
  bool pairwise_enabled_ = false;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::unordered_map<uint64_t, bool> partitions_;
  std::unordered_map<AzId, bool> failed_azs_;
  mutable NetworkStats agg_stats_;
};

}  // namespace aurora::sim
