#include "src/sim/shrink.h"

#include <algorithm>

namespace aurora::sim {

namespace {

/// Splits `items` into `n` contiguous chunks (sizes differ by at most 1).
std::vector<std::vector<size_t>> SplitChunks(const std::vector<size_t>& items,
                                             size_t n) {
  std::vector<std::vector<size_t>> chunks;
  const size_t base = items.size() / n;
  size_t extra = items.size() % n;
  size_t at = 0;
  for (size_t i = 0; i < n && at < items.size(); ++i) {
    size_t len = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    chunks.emplace_back(items.begin() + at, items.begin() + at + len);
    at += len;
  }
  return chunks;
}

std::vector<size_t> Complement(const std::vector<size_t>& items,
                               const std::vector<size_t>& chunk) {
  std::vector<size_t> out;
  out.reserve(items.size() - chunk.size());
  std::set_difference(items.begin(), items.end(), chunk.begin(), chunk.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<size_t> DdMin(
    size_t n, const std::function<bool(const std::vector<size_t>&)>& reproduces,
    ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  auto test = [&](const std::vector<size_t>& subset) {
    ++st.attempts;
    const bool hit = reproduces(subset);
    if (hit) ++st.reproduced;
    return hit;
  };

  std::vector<size_t> current(n);
  for (size_t i = 0; i < n; ++i) current[i] = i;

  size_t granularity = 2;
  while (current.size() >= 2) {
    const auto chunks = SplitChunks(current, granularity);

    // A single chunk that reproduces is the big win: restart at its size.
    bool reduced = false;
    for (const auto& chunk : chunks) {
      if (chunk.size() < current.size() && test(chunk)) {
        current = chunk;
        granularity = 2;
        reduced = true;
        break;
      }
    }
    if (reduced) continue;

    // Otherwise try dropping one chunk at a time. With only two chunks the
    // complements ARE the chunks, already tested above.
    if (chunks.size() > 2) {
      for (const auto& chunk : chunks) {
        auto rest = Complement(current, chunk);
        if (!rest.empty() && rest.size() < current.size() && test(rest)) {
          current = std::move(rest);
          granularity = std::max<size_t>(granularity - 1, 2);
          reduced = true;
          break;
        }
      }
      if (reduced) continue;
    }

    if (granularity < current.size()) {
      granularity = std::min(current.size(), granularity * 2);
      continue;
    }
    break;  // 1-minimal: no single op can be removed
  }
  return current;
}

std::vector<int64_t> TightenValues(
    std::vector<int64_t> values,
    const std::function<bool(const std::vector<int64_t>&)>& reproduces,
    ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  for (size_t i = 0; i < values.size(); ++i) {
    for (int64_t candidate : {int64_t{0}, values[i] / 2}) {
      if (candidate >= values[i]) continue;  // no slack left
      std::vector<int64_t> attempt = values;
      attempt[i] = candidate;
      ++st.attempts;
      if (reproduces(attempt)) {
        ++st.reproduced;
        values = std::move(attempt);
        break;
      }
    }
  }
  return values;
}

}  // namespace aurora::sim
