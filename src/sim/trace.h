// Deterministic execution traces: capture, serialization, and replay
// verification.
//
// The simulator is deterministic — a seed fully determines an execution —
// but a seed alone is a poor debugging artifact: replaying a 50-seed chaos
// sweep to chase one invariant violation means wading through thousands of
// irrelevant events. A Trace turns one execution into data. It records
//
//   * every executed simulator event (ordinal, virtual timestamp, label,
//     payload digest),
//   * every stochastic decision the FailureInjector made (so a replay can
//     consume the recorded decisions instead of re-rolling its RNG),
//   * the fault-op schedule that drove the run (for the chaos harness),
//   * a summary fingerprint (schedule hash, consistency points) that a
//     replay must reproduce bit-identically.
//
// The on-disk format is versioned JSON-lines (one record per line, first
// line is the header); see DESIGN.md §6 for the full schema. Replay
// semantics: a trace does not *drive* re-execution — closures are not
// serializable — it *verifies* one. The capturing harness re-runs the same
// seeded scenario, the simulator checks each executed event against the
// recorded stream, and the first divergence is reported with both sides.
// `tools/aurora_shrink` builds on this to delta-debug failing schedules
// down to minimal reproducers (src/sim/shrink.h).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::sim {

/// Bump when the record schema changes; Trace::Parse rejects mismatches
/// rather than misinterpreting old captures.
inline constexpr uint32_t kTraceFormatVersion = 1;

/// One executed simulator event, in execution order.
struct TraceEventRecord {
  SimTime at = 0;       ///< virtual time the event fired
  std::string label;    ///< schedule-site label ("" for unlabeled sites)
  uint64_t digest = 0;  ///< FNV-1a over (at, label); diffable per line

  bool operator==(const TraceEventRecord&) const = default;
};

/// One stochastic choice made by the FailureInjector, in draw order. A
/// replaying injector consumes these instead of its RNG (same values, RNG
/// untouched), so the background failure process re-executes exactly.
struct InjectorDecision {
  std::string kind;     ///< "node_fail_delay" | "node_repair_delay" | "az_fail_delay"
  uint64_t subject = 0; ///< node or AZ the draw applies to
  int64_t value_us = 0; ///< the drawn duration

  bool operator==(const InjectorDecision&) const = default;
};

/// One fault-schedule operation, kind as an opaque slug plus integer
/// arguments. The trace layer stores these without interpreting them; the
/// chaos harness (src/core/chaos_harness.h) owns the vocabulary.
struct FaultOp {
  std::string kind;
  std::vector<int64_t> args;
  SimDuration advance_us = 0;  ///< virtual time advanced after the op

  bool operator==(const FaultOp&) const = default;
};

/// A captured execution. Plain data; the Simulator, FailureInjector, and
/// chaos harness fill it in during a recording run and read it back during
/// a replay run.
class Trace {
 public:
  /// Header.
  uint64_t seed = 0;
  std::string scenario;  ///< free-form, e.g. "chaos", "injector"

  std::vector<FaultOp> ops;
  std::vector<InjectorDecision> decisions;
  std::vector<TraceEventRecord> events;

  /// End-of-run digest the replay must match. `present` distinguishes a
  /// capture that finished from one that was cut short.
  struct Summary {
    bool present = false;
    uint64_t fingerprint = 0;  ///< Simulator::ScheduleFingerprint() at end
    Lsn vcl = kInvalidLsn;
    Lsn vdl = kInvalidLsn;
    uint64_t executed_events = 0;
    SimTime end_time = 0;
  };
  Summary summary;

  /// Digest of one event; also the unit the running fingerprint mixes in.
  static uint64_t EventDigest(SimTime at, const char* label);
  /// Accumulates one event digest into a running schedule fingerprint.
  static uint64_t MixFingerprint(uint64_t fingerprint, uint64_t digest);

  void Clear();

  /// Renders the whole trace as versioned JSON-lines (header first, then
  /// ops, decisions, events, summary).
  std::string Serialize() const;

  /// Parses Serialize() output. Fails on a version mismatch, a malformed
  /// line, or a record kind this build does not know.
  static Result<Trace> Parse(const std::string& text);

  /// File convenience wrappers around Serialize/Parse.
  Status WriteFile(const std::string& path) const;
  static Result<Trace> ReadFile(const std::string& path);
};

}  // namespace aurora::sim
