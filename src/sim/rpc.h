// Unary RPC helper over the simulated network.
//
// Actors hold direct pointers to each other; the network only models
// latency, liveness, and partitions. A call delivers the server closure
// after one-way latency; the server replies (possibly asynchronously, e.g.
// after simulated disk I/O) and the response crosses the network back. If
// either hop is dropped the client callback simply never runs — exactly the
// paper's failure model, where "any given write may be lost for any reason"
// and the protocol tolerates missing acknowledgements rather than relying
// on reliable delivery.

#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "src/sim/network.h"

namespace aurora::sim {

/// Server-side reply continuation for a call expecting a `Resp`.
template <typename Resp>
using ReplyFn = std::function<void(Resp)>;

/// Issues a unary call from `client` to `server_node`.
///
/// `server_fn` runs at the server after request latency; it receives a
/// reply function it may invoke at most once, now or later. `resp_bytes`
/// sizes the response message for bandwidth accounting. `on_response` runs
/// back at the client. Either leg may be silently dropped by the network.
template <typename Resp>
void UnaryCall(Network* net, NodeId client, NodeId server_node,
               uint64_t request_bytes,
               std::function<void(ReplyFn<Resp>)> server_fn,
               std::function<uint64_t(const Resp&)> resp_bytes,
               std::function<void(Resp)> on_response) {
  net->Send(client, server_node, request_bytes,
            [net, client, server_node, server_fn = std::move(server_fn),
             resp_bytes = std::move(resp_bytes),
             on_response = std::move(on_response)]() {
              auto reply = [net, client, server_node,
                            resp_bytes = std::move(resp_bytes),
                            on_response = std::move(on_response)](Resp resp) {
                const uint64_t bytes = resp_bytes(resp);
                auto shared =
                    std::make_shared<Resp>(std::move(resp));
                net->Send(server_node, client, bytes,
                          [shared, on_response]() {
                            on_response(std::move(*shared));
                          });
              };
              server_fn(std::move(reply));
            });
}

}  // namespace aurora::sim
