// Unary RPC helper over the simulated network.
//
// Actors hold direct pointers to each other; the network only models
// latency, liveness, and partitions. A call delivers the server closure
// after one-way latency; the server replies (possibly asynchronously, e.g.
// after simulated disk I/O) and the response crosses the network back. If
// either hop is dropped the client callback simply never runs — exactly the
// paper's failure model, where "any given write may be lost for any reason"
// and the protocol tolerates missing acknowledgements rather than relying
// on reliable delivery.
//
// Both legs are fully templated: the server closure, response-size functor,
// and client continuation move straight into network events, and the
// response payload itself rides inside the reply closure — no std::function
// wrappers and no shared_ptr round-trip per response on the hot path.
//
// Under the sharded engine both legs ride Network::Send, which schedules
// each delivery on the *destination* node's shard: the server closure runs
// on the server's shard, the continuation back on the client's. An RPC is
// therefore shard-safe by construction — neither side ever executes on a
// foreign event stream.

#pragma once

#include <utility>

#include "src/sim/callback.h"
#include "src/sim/network.h"

namespace aurora::sim {

/// Server-side reply continuation for a call expecting a `Resp`. Move-only:
/// the server invokes it at most once, now or later, and may move it into
/// asynchronous completion closures (e.g. simulated disk I/O).
template <typename Resp>
using ReplyFn = MoveFunc<void(Resp)>;

/// Issues a unary call from `client` to `server_node`.
///
/// `server_fn` runs at the server after request latency; it receives a
/// reply function it may invoke at most once, now or later. `resp_bytes`
/// sizes the response message for bandwidth accounting. `on_response` runs
/// back at the client. Either leg may be silently dropped by the network.
template <typename Resp, typename ServerFn, typename RespBytes,
          typename OnResponse>
void UnaryCall(Network* net, NodeId client, NodeId server_node,
               uint64_t request_bytes, ServerFn server_fn,
               RespBytes resp_bytes, OnResponse on_response) {
  net->Send(
      client, server_node, request_bytes,
      [net, client, server_node, server_fn = std::move(server_fn),
       resp_bytes = std::move(resp_bytes),
       on_response = std::move(on_response)]() mutable {
        ReplyFn<Resp> reply =
            [net, client, server_node, resp_bytes = std::move(resp_bytes),
             on_response = std::move(on_response)](Resp resp) mutable {
              const uint64_t bytes = resp_bytes(resp);
              net->Send(server_node, client, bytes,
                        [on_response = std::move(on_response),
                         resp = std::move(resp)]() mutable {
                          on_response(std::move(resp));
                        });
            };
        server_fn(std::move(reply));
      });
}

}  // namespace aurora::sim
