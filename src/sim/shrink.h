// Schedule shrinking: delta debugging over fault-op lists.
//
// Given a failure schedule whose deterministic replay trips an invariant,
// most of its operations are usually irrelevant — the violation needs two
// or three interacting faults, not thirty. DdMin implements Zeller's ddmin
// algorithm over opaque indices: drop half the ops, then quarters, then
// individual ops, re-running the (deterministic) schedule each time and
// keeping any subset that still reproduces. TightenValues then shrinks the
// per-op numeric slack (the virtual-time advance between ops) the same
// way. The chaos harness (src/core/chaos_harness.h) wires both to real
// cluster replays; `tools/aurora_shrink` exposes them on captured trace
// files. Replays are deterministic, so "still reproduces" is a pure
// function of the kept subset — no flaky-test heuristics needed.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace aurora::sim {

/// Counters a shrink run reports back (each attempt is one full replay —
/// the cost driver worth printing next to the result).
struct ShrinkStats {
  size_t attempts = 0;      ///< predicate evaluations (replays)
  size_t reproduced = 0;    ///< attempts that still tripped the failure
};

/// Minimizes a subset of [0, n) under `reproduces`, which must return true
/// for the full index set (callers should verify that before shrinking)
/// and be deterministic. Returns a 1-minimal subset in ascending order:
/// removing any single remaining index no longer reproduces. Worst case
/// O(n^2) replays; typically O(n log n).
std::vector<size_t> DdMin(
    size_t n, const std::function<bool(const std::vector<size_t>&)>& reproduces,
    ShrinkStats* stats = nullptr);

/// Greedy per-element value minimization: for each position, tries the
/// candidates 0 then value/2 (first success wins, keeping the schedule
/// deterministic and the pass O(n) replays). Used to tighten the virtual
/// time window of an already op-minimal schedule. `reproduces` receives
/// the full candidate vector.
std::vector<int64_t> TightenValues(
    std::vector<int64_t> values,
    const std::function<bool(const std::vector<int64_t>&)>& reproduces,
    ShrinkStats* stats = nullptr);

}  // namespace aurora::sim
