#include "src/engine/consistency_tracker.h"

#include <algorithm>

namespace aurora::engine {

void ConsistencyTracker::ConfigurePg(ProtectionGroupId pg,
                                     quorum::QuorumSet write_set,
                                     std::vector<SegmentId> members) {
  PgTracking& tracking = pgs_[pg];
  tracking.write_set = std::move(write_set);
  // Keep SCLs for surviving members; drop departed ones.
  std::map<SegmentId, Lsn> kept;
  for (SegmentId m : members) {
    auto it = tracking.scls.find(m);
    if (it != tracking.scls.end()) kept[m] = it->second;
  }
  tracking.scls = std::move(kept);
  tracking.members = std::move(members);
}

void ConsistencyTracker::ObserveScl(ProtectionGroupId pg, SegmentId segment,
                                    Lsn scl) {
  auto it = pgs_.find(pg);
  if (it == pgs_.end()) return;
  Lsn& known = it->second.scls[segment];
  known = std::max(known, scl);
}

void ConsistencyTracker::RecordIssued(ProtectionGroupId pg, Lsn lsn) {
  auto it = pgs_.find(pg);
  if (it == pgs_.end()) return;
  if (lsn <= it->second.pgcl) return;
  std::deque<Lsn>& outstanding = it->second.outstanding;
  // The single writer issues LSNs in ascending order, so this is an O(1)
  // push; tolerate out-of-order or duplicate notifications defensively.
  if (outstanding.empty() || lsn > outstanding.back()) {
    outstanding.push_back(lsn);
    return;
  }
  auto pos = std::lower_bound(outstanding.begin(), outstanding.end(), lsn);
  if (pos == outstanding.end() || *pos != lsn) outstanding.insert(pos, lsn);
}

void ConsistencyTracker::RecordMtrComplete(Lsn lsn) {
  // Same monotonic shape as RecordIssued.
  if (mtr_points_.empty() || lsn > mtr_points_.back()) {
    mtr_points_.push_back(lsn);
    return;
  }
  auto pos = std::lower_bound(mtr_points_.begin(), mtr_points_.end(), lsn);
  if (pos == mtr_points_.end() || *pos != lsn) mtr_points_.insert(pos, lsn);
}

void ConsistencyTracker::SetMaxAllocated(Lsn lsn) {
  max_allocated_ = std::max(max_allocated_, lsn);
}

Lsn ConsistencyTracker::ComputePgcl(const PgTracking& tracking) const {
  // Find the largest SCL value X such that the set of members with
  // SCL >= X satisfies the write quorum. Iterate distinct SCLs downward,
  // growing the satisfied set. Runs once per write ack; the sort buffer
  // is a reused member so the hot path does not allocate.
  std::vector<std::pair<Lsn, SegmentId>>& by_scl = by_scl_scratch_;
  by_scl.clear();
  by_scl.reserve(tracking.scls.size());
  for (const auto& [segment, scl] : tracking.scls) {
    by_scl.emplace_back(scl, segment);
  }
  std::sort(by_scl.begin(), by_scl.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  quorum::SegmentSet at_or_above;
  size_t i = 0;
  while (i < by_scl.size()) {
    const Lsn x = by_scl[i].first;
    while (i < by_scl.size() && by_scl[i].first == x) {
      at_or_above.insert(by_scl[i].second);
      ++i;
    }
    if (x == kInvalidLsn) break;
    if (tracking.write_set.SatisfiedBy(at_or_above)) return x;
  }
  return kInvalidLsn;
}

bool ConsistencyTracker::Advance() {
  const Lsn old_vcl = vcl_;
  const Lsn old_vdl = vdl_;
  Lsn vcl_bound = max_allocated_;
  for (auto& [pg, tracking] : pgs_) {
    const Lsn pgcl = ComputePgcl(tracking);
    tracking.pgcl = std::max(tracking.pgcl, pgcl);
    // Ascending deque: everything covered by PGCL drains off the front.
    while (!tracking.outstanding.empty() &&
           tracking.outstanding.front() <= tracking.pgcl) {
      tracking.outstanding.pop_front();
    }
    if (!tracking.outstanding.empty()) {
      // The first record of this PG above its PGCL has not met quorum;
      // VCL may not pass it (§2.3: "no pending writes preventing PGCL
      // from advancing").
      vcl_bound = std::min(vcl_bound, tracking.outstanding.front() - 1);
    }
  }
  vcl_ = std::max(vcl_, vcl_bound);
  // VDL: highest MTR completion point at or below VCL; passed points
  // drain off the front.
  Lsn last_passed = kInvalidLsn;
  while (!mtr_points_.empty() && mtr_points_.front() <= vcl_) {
    last_passed = mtr_points_.front();
    mtr_points_.pop_front();
  }
  if (last_passed != kInvalidLsn) {
    StoreVdl(std::max(vdl_, last_passed));
  }
  return vcl_ != old_vcl || vdl_ != old_vdl;
}

Lsn ConsistencyTracker::pgcl(ProtectionGroupId pg) const {
  auto it = pgs_.find(pg);
  return it == pgs_.end() ? kInvalidLsn : it->second.pgcl;
}

void ConsistencyTracker::Reset(Lsn vcl, Lsn vdl, Lsn max_allocated) {
  for (auto& [pg, tracking] : pgs_) {
    tracking.outstanding.clear();
    tracking.pgcl = kInvalidLsn;
    tracking.scls.clear();
  }
  mtr_points_.clear();
  vcl_ = vcl;
  StoreVdl(vdl);
  max_allocated_ = max_allocated;
}

void ConsistencyTracker::SeedPgcl(ProtectionGroupId pg, Lsn pgcl) {
  auto it = pgs_.find(pg);
  if (it != pgs_.end()) it->second.pgcl = std::max(it->second.pgcl, pgcl);
}

Lsn ConsistencyTracker::SclOf(ProtectionGroupId pg, SegmentId segment) const {
  auto it = pgs_.find(pg);
  if (it == pgs_.end()) return kInvalidLsn;
  auto scl = it->second.scls.find(segment);
  return scl == it->second.scls.end() ? kInvalidLsn : scl->second;
}

}  // namespace aurora::engine
