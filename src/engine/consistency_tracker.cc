#include "src/engine/consistency_tracker.h"

#include <algorithm>

namespace aurora::engine {

void ConsistencyTracker::ConfigurePg(ProtectionGroupId pg,
                                     quorum::QuorumSet write_set,
                                     std::vector<SegmentId> members) {
  PgTracking& tracking = pgs_[pg];
  tracking.write_set = std::move(write_set);
  // Keep SCLs for surviving members; drop departed ones.
  std::map<SegmentId, Lsn> kept;
  for (SegmentId m : members) {
    auto it = tracking.scls.find(m);
    if (it != tracking.scls.end()) kept[m] = it->second;
  }
  tracking.scls = std::move(kept);
  tracking.members = std::move(members);
}

void ConsistencyTracker::ObserveScl(ProtectionGroupId pg, SegmentId segment,
                                    Lsn scl) {
  auto it = pgs_.find(pg);
  if (it == pgs_.end()) return;
  Lsn& known = it->second.scls[segment];
  known = std::max(known, scl);
}

void ConsistencyTracker::RecordIssued(ProtectionGroupId pg, Lsn lsn) {
  auto it = pgs_.find(pg);
  if (it == pgs_.end()) return;
  if (lsn > it->second.pgcl) it->second.outstanding.insert(lsn);
}

void ConsistencyTracker::RecordMtrComplete(Lsn lsn) {
  mtr_points_.insert(lsn);
}

void ConsistencyTracker::SetMaxAllocated(Lsn lsn) {
  max_allocated_ = std::max(max_allocated_, lsn);
}

Lsn ConsistencyTracker::ComputePgcl(const PgTracking& tracking) const {
  // Find the largest SCL value X such that the set of members with
  // SCL >= X satisfies the write quorum. Iterate distinct SCLs downward,
  // growing the satisfied set.
  std::vector<std::pair<Lsn, SegmentId>> by_scl;
  by_scl.reserve(tracking.scls.size());
  for (const auto& [segment, scl] : tracking.scls) {
    by_scl.emplace_back(scl, segment);
  }
  std::sort(by_scl.begin(), by_scl.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  quorum::SegmentSet at_or_above;
  size_t i = 0;
  while (i < by_scl.size()) {
    const Lsn x = by_scl[i].first;
    while (i < by_scl.size() && by_scl[i].first == x) {
      at_or_above.insert(by_scl[i].second);
      ++i;
    }
    if (x == kInvalidLsn) break;
    if (tracking.write_set.SatisfiedBy(at_or_above)) return x;
  }
  return kInvalidLsn;
}

bool ConsistencyTracker::Advance() {
  const Lsn old_vcl = vcl_;
  const Lsn old_vdl = vdl_;
  Lsn vcl_bound = max_allocated_;
  for (auto& [pg, tracking] : pgs_) {
    const Lsn pgcl = ComputePgcl(tracking);
    tracking.pgcl = std::max(tracking.pgcl, pgcl);
    tracking.outstanding.erase(
        tracking.outstanding.begin(),
        tracking.outstanding.upper_bound(tracking.pgcl));
    if (!tracking.outstanding.empty()) {
      // The first record of this PG above its PGCL has not met quorum;
      // VCL may not pass it (§2.3: "no pending writes preventing PGCL
      // from advancing").
      vcl_bound = std::min(vcl_bound, *tracking.outstanding.begin() - 1);
    }
  }
  vcl_ = std::max(vcl_, vcl_bound);
  // VDL: highest MTR completion point at or below VCL.
  auto it = mtr_points_.upper_bound(vcl_);
  if (it != mtr_points_.begin()) {
    --it;
    vdl_ = std::max(vdl_, *it);
    mtr_points_.erase(mtr_points_.begin(), it);
  }
  return vcl_ != old_vcl || vdl_ != old_vdl;
}

Lsn ConsistencyTracker::pgcl(ProtectionGroupId pg) const {
  auto it = pgs_.find(pg);
  return it == pgs_.end() ? kInvalidLsn : it->second.pgcl;
}

void ConsistencyTracker::Reset(Lsn vcl, Lsn vdl, Lsn max_allocated) {
  for (auto& [pg, tracking] : pgs_) {
    tracking.outstanding.clear();
    tracking.pgcl = kInvalidLsn;
    tracking.scls.clear();
  }
  mtr_points_.clear();
  vcl_ = vcl;
  vdl_ = vdl;
  max_allocated_ = max_allocated;
}

void ConsistencyTracker::SeedPgcl(ProtectionGroupId pg, Lsn pgcl) {
  auto it = pgs_.find(pg);
  if (it != pgs_.end()) it->second.pgcl = std::max(it->second.pgcl, pgcl);
}

Lsn ConsistencyTracker::SclOf(ProtectionGroupId pg, SegmentId segment) const {
  auto it = pgs_.find(pg);
  if (it == pgs_.end()) return kInvalidLsn;
  auto scl = it->second.scls.find(segment);
  return scl == it->second.scls.end() ? kInvalidLsn : scl->second;
}

}  // namespace aurora::engine
