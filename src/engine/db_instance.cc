#include "src/engine/db_instance.h"

#include <algorithm>
#include <cassert>

#include "src/common/interval_set.h"
#include "src/common/logging.h"

namespace aurora::engine {

uint64_t ReplicationEvent::SerializedSize() const {
  uint64_t bytes = 64;
  for (const auto& r : mtr) bytes += r.SerializedSize();
  return bytes;
}

DbInstance::DbInstance(sim::Simulator* sim, sim::Network* network, NodeId id,
                       AzId az, storage::NodeResolver resolver,
                       ControlPlane control_plane, DbOptions options)
    : sim_(sim),
      network_(network),
      id_(id),
      az_(az),
      resolver_(std::move(resolver)),
      control_plane_(std::move(control_plane)),
      options_(options) {
  network_->RegisterNode(id_, az_, this);
  auto& registry = metrics::Registry::Global();
  m_commits_acked_ = registry.GetCounter("engine.commits_acked");
  m_replication_events_ = registry.GetCounter("engine.replication_events");
  m_commit_queue_depth_ = registry.GetGauge("engine.commit_queue_depth");
  m_commit_wait_us_ = registry.GetHistogram("engine.commit_wait_us");
  m_degraded_rejected_ = registry.GetCounter("aurora.degraded.rejected_writes");
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void DbInstance::InitComponents(const quorum::VolumeGeometry& geometry,
                                VolumeEpoch epoch) {
  RetireDriver();
  cache_ = std::make_unique<BufferCache>(options_.cache_pages);
  driver_ = std::make_unique<StorageDriver>(sim_, network_, id_, resolver_,
                                            options_.driver);
  driver_->SetGeometry(geometry, epoch);
  driver_->SetAdvanceCallback([this]() { OnDurabilityAdvance(); });
  driver_->SetFencedCallback([this]() {
    // Fencing ends this incarnation like a crash as far as local
    // ephemeral state goes (§2.4): parked commits, txn state, and locks
    // die with it, and recovery decides each commit's fate by whether
    // its SCN survived truncation. Keeping the queue would wedge it —
    // the recovered tracker restarts with VCL at (or past) those SCNs,
    // so no durability advance ever rescans them.
    OnCrash();
    fenced_ = true;
  });
  // Recovery rebuilds the driver; re-apply the externally installed ack
  // observer (health monitoring) so it survives crash/failover.
  if (ack_observer_) driver_->SetAckObserver(ack_observer_);
  btree_ = std::make_unique<BTree>(
      options_.btree,
      [this](BlockId block, std::function<void(Result<storage::Page*>)> f) {
        WithPage(block, std::move(f));
      },
      [this](BlockId block) { return CachedPage(block); });
}

void DbInstance::Bootstrap(std::function<void(Status)> cb) {
  control_plane_.fetch_geometry([this, cb = std::move(cb)](
                                    quorum::VolumeGeometry geometry,
                                    VolumeEpoch epoch) {
    InitComponents(geometry, epoch);
    driver_->Start();
    open_ = true;
    fenced_ = false;
    next_lsn_ = 1;
    // The root leaf is the first allocation (PG0, offset 1); every PG
    // starts its allocation cursor after its reserved block-0 slot.
    const BlockId root = kFirstAllocatableBlock;
    std::vector<uint64_t> cursors(geometry.PgCount(), 1);
    cursors[0] = 2;  // root consumed PG0's first slot
    const Lsn last = AppendMtr(BTree::BootstrapOps(root, cursors),
                               kInvalidTxn, log::RecordType::kData);
    // Acknowledge once the bootstrap MTR is durable.
    commit_queue_.Enqueue(txn::PendingCommit{
        kInvalidTxn, last, sim_->Now(),
        [cb = std::move(cb)]() { cb(Status::OK()); }});
  });
}

void DbInstance::RetireDriver() {
  // The driver (and its boxcar batchers) is referenced by simulator
  // events already scheduled (retry sweeps, hedge timers, boxcar
  // dispatches). Those events guard on the driver's stopped state, so the
  // object must outlive them: retire it instead of destroying it.
  if (driver_) {
    driver_->Stop();
    retired_drivers_.push_back(std::move(driver_));
  }
}

void DbInstance::OnCrash() {
  // Everything here is the "local ephemeral state" of §2.4.
  open_ = false;
  RetireDriver();
  btree_.reset();
  if (cache_) cache_->Clear();
  cache_.reset();
  commit_queue_.Clear();
  locks_.Clear();
  txns_ = txn::TxnManager();
  txn_views_.clear();
  pending_fetches_.clear();
  replica_sinks_.clear();
  replica_read_points_.clear();
  last_pg_lsn_.clear();
  last_volume_lsn_ = kInvalidLsn;
  current_undo_block_ = kInvalidBlock;
  undo_entries_in_block_ = 0;
  last_shipped_vdl_ = kInvalidLsn;
}

// ---------------------------------------------------------------------------
// Page access
// ---------------------------------------------------------------------------

storage::Page* DbInstance::CachedPage(BlockId block) {
  return cache_ ? cache_->Find(block) : nullptr;
}

void DbInstance::WithPage(BlockId block,
                          std::function<void(Result<storage::Page*>)> cb) {
  if (storage::Page* page = CachedPage(block); page != nullptr) {
    cb(page);
    return;
  }
  cache_->CountMiss();
  auto [it, inserted] = pending_fetches_.try_emplace(block);
  it->second.push_back(std::move(cb));
  if (!inserted) return;  // fetch already in flight
  driver_->ReadBlock(
      block, vdl(), ComputePgmrpl(),
      [this, block](Result<storage::Page> page) {
        auto waiters = pending_fetches_.extract(block);
        if (waiters.empty()) return;  // crashed meanwhile
        if (!page.ok()) {
          for (auto& waiter : waiters.mapped()) waiter(page.status());
          return;
        }
        storage::Page* cached = cache_->Insert(std::move(*page), vdl());
        for (auto& waiter : waiters.mapped()) {
          // Re-find each time: a previous waiter may have grown the cache
          // and evicted it (extremely unlikely, but correct).
          storage::Page* p = cache_->Find(block);
          if (p == nullptr) p = cached;  // best effort
          waiter(p);
        }
      });
}

// ---------------------------------------------------------------------------
// MTR append (the writer's only write primitive)
// ---------------------------------------------------------------------------

Lsn DbInstance::AppendMtr(const std::vector<StagedOp>& ops, TxnId txn,
                          log::RecordType type) {
  assert(!ops.empty());
  assert(driver_ != nullptr);
  // Latch every page this MTR touches: inserting a fresh page mid-MTR may
  // trigger eviction, and no page the MTR still has to mutate may go.
  std::set<BlockId> latched;
  for (const auto& staged : ops) {
    if (latched.insert(staged.block).second) cache_->Pin(staged.block);
  }
  std::vector<log::RedoRecord> records;
  records.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const StagedOp& staged = ops[i];
    auto pg = driver_->geometry().PgForBlock(staged.block);
    assert(pg.ok() && "block outside volume geometry");
    // Ensure the page exists in cache (new blocks start empty).
    storage::Page* page = CachedPage(staged.block);
    if (page == nullptr) {
      // Only brand-new pages (first op = format) may be created blind;
      // mutating an uncached existing page would fork its block chain.
      if (staged.op.type != storage::PageOpType::kFormat) {
        AURORA_ERROR << "AppendMtr: mutating uncached block " << staged.block
                     << " — block chain will fork (caller bug)";
        assert(false && "mutating an uncached existing page");
      }
      storage::Page fresh;
      fresh.id = staged.block;
      page = cache_->Insert(std::move(fresh), vdl());
      cache_->Pin(staged.block);  // latch the fresh page too
    }
    log::RedoRecord record;
    record.lsn = next_lsn_++;
    record.prev_lsn_volume = last_volume_lsn_;
    record.prev_lsn_segment = last_pg_lsn_[*pg];
    record.prev_lsn_block = page->page_lsn;
    record.pg = *pg;
    record.block = staged.block;
    record.txn = txn;
    record.type = type;
    if (ops.size() == 1) {
      record.mtr = log::MtrBoundary::kSingle;
    } else if (i == 0) {
      record.mtr = log::MtrBoundary::kBegin;
    } else if (i + 1 == ops.size()) {
      record.mtr = log::MtrBoundary::kEnd;
    } else {
      record.mtr = log::MtrBoundary::kMiddle;
    }
    record.payload = EncodePageOp(staged.op);
    last_volume_lsn_ = record.lsn;
    last_pg_lsn_[*pg] = record.lsn;
    // Apply to the cached image immediately (§2.2: changes modify the
    // buffer-cache image and the redo record goes to the log).
    Status st = ApplyPageOp(page, staged.op, record.lsn);
    assert(st.ok());
    (void)st;
    records.push_back(std::move(record));
  }
  for (BlockId block : latched) cache_->Unpin(block);
  const Lsn last = records.back().lsn;
  driver_->SubmitRecords(records);
  if (!replica_sinks_.empty()) {
    ReplicationEvent event;
    event.type = ReplicationEvent::Type::kMtr;
    event.mtr = std::move(records);
    ShipReplicationEvent(event);
  }
  return last;
}

BlockId DbInstance::AllocateBlock(std::vector<StagedOp>* ops) {
  // Per-PG allocation cursors live in the meta page; new blocks go to the
  // least-filled protection group so data stripes across the volume.
  // Earlier ops in this MTR may already have bumped a cursor; staged meta
  // updates win over the cached page state.
  storage::Page* meta = CachedPage(kMetaBlock);
  assert(meta != nullptr && "meta page must be cached for allocation");
  const auto& geometry = driver_->geometry();
  const uint64_t per_pg = geometry.blocks_per_pg();

  auto cursor_of = [&](ProtectionGroupId pg) -> uint64_t {
    const std::string key = AllocCursorKey(pg);
    for (auto it = ops->rbegin(); it != ops->rend(); ++it) {
      if (it->block == kMetaBlock && it->op.key == key) {
        return *DecodeU64Value(it->op.value);
      }
    }
    auto entry = meta->entries.find(key);
    // A PG without a cursor entry was added by volume growth after
    // bootstrap: it starts fresh at offset 1 (block 0 of each PG is
    // reserved), and the first allocation writes its cursor entry.
    if (entry == meta->entries.end()) return 1;
    auto decoded = DecodeU64Value(entry->second);
    return decoded.ok() ? *decoded : per_pg;
  };

  ProtectionGroupId best_pg = 0;
  uint64_t best_cursor = per_pg;
  for (size_t pg = 0; pg < geometry.PgCount(); ++pg) {
    const uint64_t cursor = cursor_of(static_cast<ProtectionGroupId>(pg));
    if (cursor < best_cursor) {
      best_cursor = cursor;
      best_pg = static_cast<ProtectionGroupId>(pg);
    }
  }
  if (best_cursor >= per_pg) {
    AURORA_WARN << "volume full: all " << geometry.PgCount()
                << " protection groups exhausted; grow the volume";
    return kInvalidBlock;
  }
  storage::PageOp bump;
  bump.type = storage::PageOpType::kInsert;
  bump.key = AllocCursorKey(best_pg);
  bump.value = EncodeU64Value(best_cursor + 1);
  ops->push_back({kMetaBlock, bump});
  return static_cast<BlockId>(best_pg) * per_pg + best_cursor;
}

// ---------------------------------------------------------------------------
// Transactions: writes
// ---------------------------------------------------------------------------

TxnId DbInstance::Begin() {
  assert(open_);
  return txns_.Begin(sim_->Now())->id;
}

void DbInstance::Put(TxnId txn, const std::string& key,
                     const std::string& value,
                     std::function<void(Status)> cb) {
  stats_.puts++;
  PutInternal(txn, DataKey(key), value, /*deleted=*/false, std::move(cb),
              options_.max_op_retries);
}

void DbInstance::Delete(TxnId txn, const std::string& key,
                        std::function<void(Status)> cb) {
  stats_.deletes++;
  PutInternal(txn, DataKey(key), "", /*deleted=*/true, std::move(cb),
              options_.max_op_retries);
}

void DbInstance::PutInternal(TxnId txn, std::string key, std::string value,
                             bool deleted, std::function<void(Status)> cb,
                             int retries) {
  if (!open_) {
    cb(fenced_ ? Status::Fenced("instance fenced")
               : Status::Unavailable("instance not open"));
    return;
  }
  // Degraded-mode backpressure: while a PG has lost its write quorum and
  // the driver's parked-record budget is exhausted, refuse NEW writes up
  // front (bounded memory). In-flight records, commits, and reads are
  // untouched — commits park in the SCN queue and drain on recovery,
  // reads stay available at Vr=3.
  if (driver_ != nullptr && !driver_->AcceptingWrites()) {
    AURORA_COUNT(m_degraded_rejected_, 1);
    cb(Status::Unavailable("write quorum degraded: parked-write budget full"));
    return;
  }
  txn::Transaction* t = txns_.Find(txn);
  if (t == nullptr || t->state != txn::TxnState::kActive) {
    cb(Status::InvalidArgument("transaction not active"));
    return;
  }
  if (retries <= 0) {
    cb(Status::Aborted("write retries exhausted"));
    return;
  }
  if (Status st = locks_.Acquire(txn, key); !st.ok()) {
    cb(std::move(st));
    return;
  }
  auto path = btree_->FindPathSync(key);
  if (!path.ok()) {
    // Fault the path in asynchronously, then retry synchronously.
    btree_->FindPath(key, [this, txn, key = std::move(key),
                           value = std::move(value), deleted,
                           cb = std::move(cb),
                           retries](Result<std::vector<BlockId>> r) mutable {
      if (!r.ok() && !r.status().IsAborted()) {
        cb(r.status());
        return;
      }
      PutInternal(txn, std::move(key), std::move(value), deleted,
                  std::move(cb), retries - 1);
    });
    return;
  }
  storage::Page* leaf = CachedPage(path->back());
  assert(leaf != nullptr);
  std::optional<txn::RowVersion> existing;
  if (auto it = leaf->entries.find(key); it != leaf->entries.end()) {
    auto decoded = txn::DecodeRowVersion(it->second);
    if (!decoded.ok()) {
      cb(decoded.status());
      return;
    }
    existing = std::move(*decoded);
  }
  if (existing.has_value() && existing->txn != txn) {
    // If the current top version belongs to an uncommitted transaction
    // that is not locally active, it is a leftover from a crashed
    // incarnation: roll it back, then retry (§2.4: undo happens after
    // open, in parallel with user activity).
    const TxnId writer = existing->txn;
    if (!txns_.ActiveSet().contains(writer)) {
      ResolveCommitScn(writer, [this, txn, key = std::move(key),
                                value = std::move(value), deleted,
                                cb = std::move(cb), retries,
                                existing](std::optional<Scn> scn) mutable {
        if (scn.has_value()) {
          // Committed: proceed with the write on a fresh descent.
          txn::Transaction* t2 = txns_.Find(txn);
          if (t2 == nullptr || t2->state != txn::TxnState::kActive) {
            cb(Status::InvalidArgument("transaction not active"));
            return;
          }
          auto path2 = btree_->FindPathSync(key);
          if (!path2.ok()) {
            PutInternal(txn, std::move(key), std::move(value), deleted,
                        std::move(cb), retries - 1);
            return;
          }
          ApplyWrite(t2, key, value, deleted, *path2, existing,
                     std::move(cb));
          return;
        }
        stats_.leftover_rollbacks++;
        RollbackLeftover(
            key, *existing,
            [this, txn, key, value, deleted, cb = std::move(cb),
             retries](Status st) mutable {
              if (!st.ok()) {
                cb(std::move(st));
                return;
              }
              PutInternal(txn, std::move(key), std::move(value), deleted,
                          std::move(cb), retries - 1);
            });
      });
      return;
    }
    // Locally active other writer would have held the lock; Acquire above
    // succeeded, so this must be our own or a committed version.
  }
  ApplyWrite(t, key, value, deleted, *path, existing, std::move(cb));
}

Result<std::pair<BlockId, std::string>> DbInstance::StageUndo(
    txn::Transaction* txn, const std::string& key,
    const std::optional<txn::RowVersion>& existing,
    std::vector<StagedOp>* ops) {
  if (current_undo_block_ == kInvalidBlock ||
      undo_entries_in_block_ >= options_.undo_entries_per_page ||
      CachedPage(current_undo_block_) == nullptr) {
    // The third condition: the current undo page fell out of cache (its
    // redo is durable). Appending blind would break its block chain, so
    // simply start a fresh undo page.
    current_undo_block_ = AllocateBlock(ops);
    if (current_undo_block_ == kInvalidBlock) {
      return Status::OutOfRange("volume full: grow the volume to continue");
    }
    undo_entries_in_block_ = 0;
    storage::PageOp format;
    format.type = storage::PageOpType::kFormat;
    format.page_type = storage::PageType::kUndo;
    ops->push_back({current_undo_block_, format});
  }
  txn::UndoEntry entry;
  entry.row_key = key;
  entry.prev_exists = existing.has_value();
  if (existing.has_value()) entry.prev = *existing;
  entry.next = txn->undo_head;
  const std::string undo_key =
      "u" + std::to_string(txn->id) + "-" + std::to_string(txn->undo_seq++);
  storage::PageOp insert;
  insert.type = storage::PageOpType::kInsert;
  insert.key = undo_key;
  insert.value = txn::EncodeUndoEntry(entry);
  ops->push_back({current_undo_block_, insert});
  undo_entries_in_block_++;
  return std::make_pair(current_undo_block_, undo_key);
}

void DbInstance::ApplyWrite(txn::Transaction* txn, const std::string& key,
                            const std::string& value, bool deleted,
                            const std::vector<BlockId>& path,
                            std::optional<txn::RowVersion> existing,
                            std::function<void(Status)> cb) {
  std::vector<StagedOp> ops;
  auto undo_ptr = StageUndo(txn, key, existing, &ops);
  if (!undo_ptr.ok()) {
    cb(undo_ptr.status());
    return;
  }
  txn::RowVersion version;
  version.txn = txn->id;
  version.deleted = deleted;
  version.value = value;
  version.undo = txn::UndoPtr{undo_ptr->first, undo_ptr->second};
  auto plan = btree_->PlanInsert(
      path, key, txn::EncodeRowVersion(version),
      [this](std::vector<StagedOp>* staged) { return AllocateBlock(staged); });
  if (!plan.ok()) {
    cb(plan.status());
    return;
  }
  ops.insert(ops.end(), plan->begin(), plan->end());
  AppendMtr(ops, txn->id);
  txn->undo_head = version.undo;
  txn->writes.emplace_back(path.back(), key);
  cb(Status::OK());
}

// ---------------------------------------------------------------------------
// Transactions: reads
// ---------------------------------------------------------------------------

txn::ReadView DbInstance::ViewFor(TxnId txn) {
  if (txn != kInvalidTxn) {
    auto it = txn_views_.find(txn);
    if (it != txn_views_.end()) return it->second;
    txn::ReadView view = txns_.OpenReadView(vdl(), txn);
    txn_views_.emplace(txn, view);
    return view;
  }
  return txns_.OpenReadView(vdl(), kInvalidTxn);
}

void DbInstance::FinishStatementView(TxnId txn, const txn::ReadView& view) {
  if (txn == kInvalidTxn) txns_.CloseReadView(view);
}

void DbInstance::ResolveCommitScn(
    TxnId writer, std::function<void(std::optional<Scn>)> cb) {
  if (auto scn = txns_.CommitScnOf(writer); scn.has_value()) {
    cb(scn);
    return;
  }
  if (txns_.ActiveSet().contains(writer)) {
    cb(std::nullopt);
    return;
  }
  // Consult the persistent transaction-status index in the tree
  // (survives crashes; this is how the post-recovery instance and
  // replicas learn outcomes).
  ResolveCommitScnFromIndex(writer, std::move(cb), 4);
}

void DbInstance::ResolveCommitScnFromIndex(
    TxnId writer, std::function<void(std::optional<Scn>)> cb, int retries) {
  btree_->GetEntry(
      StatusKey(writer),
      [this, writer, cb = std::move(cb), retries](Result<std::string> raw) {
        if (!raw.ok()) {
          if (raw.status().IsAborted() && retries > 0) {
            // Leaf evicted mid-lookup: retry rather than mis-reporting an
            // actually-committed transaction as invisible.
            ResolveCommitScnFromIndex(writer, std::move(cb), retries - 1);
            return;
          }
          cb(std::nullopt);
          return;
        }
        auto scn = DecodeU64Value(*raw);
        if (!scn.ok()) {
          cb(std::nullopt);
          return;
        }
        txns_.InstallCommitNotification(writer, *scn);
        cb(*scn);
      });
}

void DbInstance::ResolveVisible(txn::RowVersion version, txn::ReadView view,
                                std::function<void(Result<std::string>)> cb,
                                int depth) {
  if (depth <= 0) {
    cb(Status::Internal("undo chain too deep"));
    return;
  }
  ResolveCommitScn(version.txn, [this, version = std::move(version),
                                 view = std::move(view), cb = std::move(cb),
                                 depth](std::optional<Scn> scn) mutable {
    const Scn commit_scn = scn.value_or(kInvalidLsn);
    if (view.Sees(version.txn, commit_scn)) {
      if (version.deleted) {
        cb(Status::NotFound("deleted in snapshot"));
      } else {
        cb(std::move(version.value));
      }
      return;
    }
    if (version.undo.IsNull()) {
      cb(Status::NotFound("no visible version"));
      return;
    }
    stats_.undo_chain_walks++;
    const txn::UndoPtr undo = version.undo;
    WithPage(undo.block, [this, undo, view = std::move(view),
                          cb = std::move(cb),
                          depth](Result<storage::Page*> page) mutable {
      if (!page.ok()) {
        cb(page.status());
        return;
      }
      auto it = (*page)->entries.find(undo.key);
      if (it == (*page)->entries.end()) {
        // Purged below every read point — treat as chain end.
        cb(Status::NotFound("undo purged"));
        return;
      }
      auto entry = txn::DecodeUndoEntry(it->second);
      if (!entry.ok()) {
        cb(entry.status());
        return;
      }
      if (!entry->prev_exists) {
        cb(Status::NotFound("row did not exist in snapshot"));
        return;
      }
      ResolveVisible(entry->prev, std::move(view), std::move(cb), depth - 1);
    });
  });
}

void DbInstance::Get(TxnId txn, const std::string& key,
                     std::function<void(Result<std::string>)> cb) {
  stats_.gets++;
  if (!open_) {
    cb(Status::Unavailable("instance not open"));
    return;
  }
  txn::ReadView view = ViewFor(txn);
  btree_->GetEntry(DataKey(key), [this, txn, view, cb = std::move(cb)](
                            Result<std::string> raw) mutable {
    if (!raw.ok()) {
      FinishStatementView(txn, view);
      if (raw.status().IsAborted()) {
        cb(Status::NotFound("key absent"));  // leaf evicted mid-read
      } else {
        cb(raw.status());
      }
      return;
    }
    auto version = txn::DecodeRowVersion(*raw);
    if (!version.ok()) {
      FinishStatementView(txn, view);
      cb(version.status());
      return;
    }
    ResolveVisible(std::move(*version), view,
                   [this, txn, view, cb = std::move(cb)](
                       Result<std::string> result) {
                     FinishStatementView(txn, view);
                     cb(std::move(result));
                   },
                   256);
  });
}

void DbInstance::Scan(
    TxnId txn, const std::string& lo, const std::string& hi, size_t limit,
    std::function<
        void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  stats_.scans++;
  if (!open_) {
    cb(Status::Unavailable("instance not open"));
    return;
  }
  txn::ReadView view = ViewFor(txn);
  btree_->ScanEntries(
      DataKey(lo), DataKey(hi), limit,
      [this, txn, view, cb = std::move(cb)](
          Result<std::vector<std::pair<std::string, std::string>>> raw) {
        if (!raw.ok()) {
          FinishStatementView(txn, view);
          cb(raw.status());
          return;
        }
        ScanResolve(std::move(*raw), 0, view, {},
                    [this, txn, view, cb = std::move(cb)](
                        Result<std::vector<
                            std::pair<std::string, std::string>>> result) {
                      FinishStatementView(txn, view);
                      cb(std::move(result));
                    });
      });
}

void DbInstance::ScanResolve(
    std::vector<std::pair<std::string, std::string>> raw, size_t index,
    txn::ReadView view, std::vector<std::pair<std::string, std::string>> acc,
    std::function<void(
        Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  if (index >= raw.size()) {
    cb(std::move(acc));
    return;
  }
  auto version = txn::DecodeRowVersion(raw[index].second);
  if (!version.ok()) {
    cb(version.status());
    return;
  }
  std::string key = raw[index].first.substr(1);  // strip the namespace
  ResolveVisible(
      std::move(*version), view,
      [this, raw = std::move(raw), index, view, acc = std::move(acc),
       key = std::move(key), cb = std::move(cb)](
          Result<std::string> value) mutable {
        if (value.ok()) {
          acc.emplace_back(std::move(key), std::move(*value));
        } else if (!value.status().IsNotFound()) {
          cb(value.status());
          return;
        }
        ScanResolve(std::move(raw), index + 1, view, std::move(acc),
                    std::move(cb));
      },
      256);
}

// ---------------------------------------------------------------------------
// Commit / rollback
// ---------------------------------------------------------------------------

void DbInstance::Commit(TxnId txn, std::function<void(Status)> cb) {
  if (!open_) {
    cb(Status::Unavailable("instance not open"));
    return;
  }
  txn::Transaction* t = txns_.Find(txn);
  if (t == nullptr || t->state != txn::TxnState::kActive) {
    cb(Status::InvalidArgument("transaction not active"));
    return;
  }
  if (t->writes.empty()) {
    // Read-only: nothing to make durable.
    txns_.MarkCommitting(txn, vdl());
    txns_.MarkCommitted(txn);
    if (auto it = txn_views_.find(txn); it != txn_views_.end()) {
      txns_.CloseReadView(it->second);
      txn_views_.erase(it);
    }
    cb(Status::OK());
    return;
  }
  FinishCommit(txn, std::move(cb), options_.max_op_retries);
}

void DbInstance::FinishCommit(TxnId txn, std::function<void(Status)> cb,
                              int retries) {
  // The commit record: a normal B-tree insert into the status index, so
  // its pages stay bounded by splits. The record's MTR-final LSN is the
  // SCN and doubles as the durable txn -> SCN mapping (readable by
  // replicas and by recovery).
  if (retries <= 0) {
    cb(Status::Aborted("commit retries exhausted"));
    return;
  }
  const std::string status_key = StatusKey(txn);
  auto path = btree_->FindPathSync(status_key);
  if (!path.ok()) {
    btree_->FindPath(status_key, [this, txn, cb = std::move(cb), retries](
                                     Result<std::vector<BlockId>>) mutable {
      txn::Transaction* t = txns_.Find(txn);
      if (t == nullptr || t->state != txn::TxnState::kActive) {
        cb(Status::InvalidArgument("transaction not active"));
        return;
      }
      FinishCommit(txn, std::move(cb), retries - 1);
    });
    return;
  }
  auto plan = btree_->PlanInsert(
      *path, status_key, EncodeU64Value(0),
      [this](std::vector<StagedOp>* staged) { return AllocateBlock(staged); });
  if (!plan.ok()) {
    FinishCommit(txn, std::move(cb), retries - 1);
    return;
  }
  // SCN = the MTR's last LSN (the whole commit MTR is durable at SCN).
  const Scn scn = next_lsn_ + plan->size() - 1;
  for (auto& staged : *plan) {
    if (staged.op.type == storage::PageOpType::kInsert &&
        staged.op.key == status_key) {
      staged.op.value = EncodeU64Value(scn);
    }
  }
  const Lsn written = AppendMtr(*plan, txn, log::RecordType::kCommit);
  assert(written == scn);
  (void)written;
  txns_.MarkCommitting(txn, scn);
  locks_.ReleaseAll(txn);
  // Ship the commit notification to replicas (§3.4); visibility there is
  // still gated by their VDL.
  if (!replica_sinks_.empty()) {
    ReplicationEvent event;
    event.type = ReplicationEvent::Type::kCommit;
    event.txn = txn;
    event.scn = scn;
    ShipReplicationEvent(event);
  }
  // Worker thread moves on; the dedicated commit path acks when VCL
  // passes the SCN (§2.3).
  const SimTime enqueued = sim_->Now();
  commit_queue_.Enqueue(txn::PendingCommit{
      txn, scn, enqueued, [this, txn, scn, enqueued, cb = std::move(cb)]() {
        txns_.MarkCommitted(txn);
        stats_.commits_acked++;
        if (scn > max_acked_scn_) max_acked_scn_ = scn;
        AURORA_COUNT(m_commits_acked_, 1);
        AURORA_OBSERVE(m_commit_wait_us_, sim_->Now() - enqueued);
        commit_latency_.Record(sim_->Now() - enqueued);
        if (auto it = txn_views_.find(txn); it != txn_views_.end()) {
          txns_.CloseReadView(it->second);
          txn_views_.erase(it);
        }
        cb(Status::OK());
      }});
  // VCL may already cover the SCN (e.g. single-record MTRs acked fast).
  OnDurabilityAdvance();
}

void DbInstance::Rollback(TxnId txn, std::function<void(Status)> cb) {
  txn::Transaction* t = txns_.Find(txn);
  if (t == nullptr || t->state != txn::TxnState::kActive) {
    cb(Status::InvalidArgument("transaction not active"));
    return;
  }
  const txn::UndoPtr head = t->undo_head;
  RollbackChain(txn, head,
                [this, txn, cb = std::move(cb)](Status st) {
                  txns_.MarkAborted(txn);
                  stats_.txn_aborts++;
                  locks_.ReleaseAll(txn);
                  if (auto it = txn_views_.find(txn);
                      it != txn_views_.end()) {
                    txns_.CloseReadView(it->second);
                    txn_views_.erase(it);
                  }
                  cb(std::move(st));
                },
                1 << 20);
}

void DbInstance::RollbackChain(TxnId txn, txn::UndoPtr ptr,
                               std::function<void(Status)> cb, int depth) {
  if (ptr.IsNull() || depth <= 0) {
    cb(Status::OK());
    return;
  }
  WithPage(ptr.block, [this, txn, ptr, cb = std::move(cb),
                       depth](Result<storage::Page*> page) mutable {
    if (!page.ok()) {
      cb(page.status());
      return;
    }
    auto it = (*page)->entries.find(ptr.key);
    if (it == (*page)->entries.end()) {
      cb(Status::Internal("undo entry missing during rollback"));
      return;
    }
    auto entry = txn::DecodeUndoEntry(it->second);
    if (!entry.ok()) {
      cb(entry.status());
      return;
    }
    // Compensation: restore the previous version (or erase the key if the
    // rolled-back write created it).
    auto path = btree_->FindPathSync(entry->row_key);
    if (!path.ok()) {
      btree_->FindPath(entry->row_key,
                       [this, txn, ptr, cb = std::move(cb), depth](
                           Result<std::vector<BlockId>>) mutable {
                         RollbackChain(txn, ptr, std::move(cb), depth - 1);
                       });
      return;
    }
    std::vector<StagedOp> ops;
    if (entry->prev_exists) {
      auto plan = btree_->PlanInsert(
          *path, entry->row_key, txn::EncodeRowVersion(entry->prev),
          [this](std::vector<StagedOp>* staged) {
            return AllocateBlock(staged);
          });
      if (!plan.ok()) {
        cb(plan.status());
        return;
      }
      ops = std::move(*plan);
    } else {
      storage::PageOp erase;
      erase.type = storage::PageOpType::kErase;
      erase.key = entry->row_key;
      ops.push_back({path->back(), erase});
    }
    AppendMtr(ops, txn);
    RollbackChain(txn, entry->next, std::move(cb), depth - 1);
  });
}

void DbInstance::RollbackLeftover(const std::string& key,
                                  txn::RowVersion version,
                                  std::function<void(Status)> cb) {
  // Walk this key's version chain past every version written by the
  // crashed transaction, then write the first surviving version back.
  const TxnId leftover = version.txn;
  if (version.undo.IsNull()) {
    // The crashed txn created the key: erase it.
    auto path = btree_->FindPathSync(key);
    if (!path.ok()) {
      cb(Status::Aborted("retry"));
      return;
    }
    storage::PageOp erase;
    erase.type = storage::PageOpType::kErase;
    erase.key = key;
    AppendMtr({{path->back(), erase}}, leftover);
    cb(Status::OK());
    return;
  }
  const txn::UndoPtr undo = version.undo;
  WithPage(undo.block, [this, key, leftover, undo,
                        cb = std::move(cb)](Result<storage::Page*> page) {
    if (!page.ok()) {
      cb(page.status());
      return;
    }
    auto it = (*page)->entries.find(undo.key);
    if (it == (*page)->entries.end()) {
      cb(Status::Internal("undo entry missing for leftover rollback"));
      return;
    }
    auto entry = txn::DecodeUndoEntry(it->second);
    if (!entry.ok()) {
      cb(entry.status());
      return;
    }
    if (entry->prev_exists && entry->prev.txn == leftover) {
      RollbackLeftover(key, entry->prev, std::move(cb));
      return;
    }
    auto path = btree_->FindPathSync(key);
    if (!path.ok()) {
      cb(Status::Aborted("retry"));
      return;
    }
    std::vector<StagedOp> ops;
    if (entry->prev_exists) {
      auto plan = btree_->PlanInsert(
          *path, key, txn::EncodeRowVersion(entry->prev),
          [this](std::vector<StagedOp>* staged) {
            return AllocateBlock(staged);
          });
      if (!plan.ok()) {
        cb(plan.status());
        return;
      }
      ops = std::move(*plan);
    } else {
      storage::PageOp erase;
      erase.type = storage::PageOpType::kErase;
      erase.key = key;
      ops.push_back({path->back(), erase});
    }
    AppendMtr(ops, leftover);
    cb(Status::OK());
  });
}

// ---------------------------------------------------------------------------
// Durability advancement & replication
// ---------------------------------------------------------------------------

void DbInstance::OnDurabilityAdvance() {
  if (driver_ == nullptr) return;
  const Lsn current_vcl = driver_->tracker().vcl();
  for (auto& pending : commit_queue_.DrainUpTo(current_vcl)) {
    pending.ack();
  }
  AURORA_GAUGE_SET(m_commit_queue_depth_, commit_queue_.Size());
  const Lsn current_vdl = driver_->tracker().vdl();
  if (current_vdl != last_shipped_vdl_ && !replica_sinks_.empty()) {
    ReplicationEvent event;
    event.type = ReplicationEvent::Type::kVdlUpdate;
    event.vdl = current_vdl;
    ShipReplicationEvent(event);
  }
  last_shipped_vdl_ = current_vdl;
  if (options_.purge_commit_history) {
    const size_t purged = txns_.PurgeHistoryBelow(ComputePgmrpl());
    if (purged > 0 && AURORA_METRICS_ON()) {
      metrics::Registry::Global()
          .GetCounter("aurora.read.history_purged")
          ->Add(purged);
    }
  }
  if (cache_) cache_->TrimToCapacity(current_vdl);
}

void DbInstance::ShipReplicationEvent(const ReplicationEvent& event) {
  AURORA_COUNT(m_replication_events_, replica_sinks_.size());
  ReplicationEvent stamped = event;
  stamped.shipped_at = sim_->Now();
  stamped.source = id_;
  for (const auto& [replica, deliver] : replica_sinks_) {
    stamped.seq = ++replica_stream_seq_[replica];
    network_->Send(id_, replica, stamped.SerializedSize(),
                   [deliver, stamped]() { deliver(stamped); });
  }
}

void DbInstance::AddReplicationSink(
    NodeId replica, std::function<void(ReplicationEvent)> deliver) {
  replica_sinks_[replica] = std::move(deliver);
  // A (re-)added sink starts a fresh seq stream: any events the previous
  // wiring lost are surfaced to the replica as a continuity break.
  replica_stream_seq_[replica] = 0;
  // Prime the replica with the current VDL.
  ReplicationEvent event;
  event.type = ReplicationEvent::Type::kVdlUpdate;
  event.vdl = vdl();
  event.source = id_;
  event.seq = ++replica_stream_seq_[replica];
  network_->Send(id_, replica, event.SerializedSize(),
                 [deliver = replica_sinks_[replica], event]() {
                   deliver(event);
                 });
}

void DbInstance::RemoveReplicationSink(NodeId replica) {
  replica_sinks_.erase(replica);
  replica_read_points_.erase(replica);
  replica_stream_seq_.erase(replica);
}

void DbInstance::ObserveReplicaReadPoint(NodeId replica, Lsn read_point) {
  replica_read_points_[replica] = read_point;
  if (AURORA_METRICS_ON() && read_point != kInvalidLsn) {
    const Lsn current_vdl = vdl();
    const int64_t lag = current_vdl > read_point
                            ? static_cast<int64_t>(current_vdl - read_point)
                            : 0;
    metrics::Registry::Global()
        .GetGauge("replica.lag_lsns." + std::to_string(replica))
        ->Set(lag);
  }
}

Lsn DbInstance::ComputePgmrpl() const {
  Lsn min_point = vdl();
  const Lsn local = txns_.MinOpenReadLsn();
  if (local != kInvalidLsn) min_point = std::min(min_point, local);
  for (const auto& [replica, point] : replica_read_points_) {
    min_point = std::min(min_point, point);
  }
  return min_point;
}

}  // namespace aurora::engine

namespace aurora::engine {

// ---------------------------------------------------------------------------
// Crash recovery (§2.4, Figure 4)
// ---------------------------------------------------------------------------

struct DbInstance::RecoveryState {
  enum class Phase { kProbing, kTails, kEpoch, kDone };

  std::function<void(Status)> cb;
  quorum::VolumeGeometry geometry;
  VolumeEpoch old_epoch = 0;
  VolumeEpoch new_epoch = 0;
  Phase phase = Phase::kProbing;

  // Probe results, keyed by PG then segment.
  std::map<ProtectionGroupId,
           std::map<SegmentId, storage::SegmentStateResponse>>
      states;
  std::map<ProtectionGroupId, Lsn> recovered_pgcl;
  std::map<ProtectionGroupId, SegmentId> best_segment;

  // Tail scan.
  IntervalSet present;
  std::map<Lsn, bool> tail_info;  // lsn -> mtr_complete
  Lsn tail_floor = kInvalidLsn;
  size_t tail_outstanding = 0;

  Lsn recovered_vcl = kInvalidLsn;
  Lsn recovered_vdl = kInvalidLsn;
  log::TruncationRange truncation;

  // Epoch installation.
  std::map<ProtectionGroupId, quorum::SegmentSet> epoch_acks;
  std::map<ProtectionGroupId, Lsn> post_truncation_scl;
  int epoch_rounds = 0;
  uint64_t generation = 0;
};

void DbInstance::Open(std::function<void(Status)> cb) {
  if (open_) {
    cb(Status::OK());
    return;
  }
  auto state = std::make_shared<RecoveryState>();
  state->cb = std::move(cb);
  state->generation = ++recovery_generation_;
  control_plane_.fetch_geometry(
      [this, state](quorum::VolumeGeometry geometry, VolumeEpoch epoch) {
        state->geometry = std::move(geometry);
        state->old_epoch = epoch;
        InitComponents(state->geometry, epoch);
        StartRecovery(state);
      });
}

void DbInstance::StartRecovery(std::shared_ptr<RecoveryState> state) {
  if (state->generation != recovery_generation_ || driver_ == nullptr) return;
  state->phase = RecoveryState::Phase::kProbing;
  state->states.clear();
  state->recovered_pgcl.clear();
  state->best_segment.clear();
  state->present = IntervalSet();
  state->tail_info.clear();
  ProbeRound(state);
}

void DbInstance::ProbeRound(std::shared_ptr<RecoveryState> state) {
  if (state->generation != recovery_generation_ || driver_ == nullptr) return;
  if (state->phase != RecoveryState::Phase::kProbing) return;
  // Probe every segment of every PG; un-hydrated segments never count
  // toward a read quorum.
  for (const auto& pg : state->geometry.pgs()) {
    for (const auto& member : pg.AllMembers()) {
      driver_->ProbeSegmentState(
          member, [this, state, pg_id = pg.pg()](
                      storage::SegmentStateResponse response) {
            if (state->phase != RecoveryState::Phase::kProbing) return;
            if (!response.status.ok()) return;
            state->states[pg_id][response.segment] = std::move(response);
          });
    }
  }
  // Evaluate after a settling delay; retry the round if any PG lacks a
  // read quorum among hydrated responders.
  sim_->Schedule(options_.recovery_retry, [this, state]() {
    if (state->phase != RecoveryState::Phase::kProbing) return;
    bool all_ready = true;
    for (const auto& pg : state->geometry.pgs()) {
      quorum::SegmentSet hydrated;
      for (const auto& [seg, response] : state->states[pg.pg()]) {
        if (response.hydrated) hydrated.insert(seg);
      }
      if (!pg.ReadSet().SatisfiedBy(hydrated)) {
        all_ready = false;
        break;
      }
    }
    if (!all_ready) {
      ProbeRound(state);
      return;
    }
    // Read quorum reached everywhere: recover PGCLs (max SCL among
    // hydrated responders) and collect truncation ranges.
    Lsn min_pgcl = kInvalidLsn;
    bool first = true;
    for (const auto& pg : state->geometry.pgs()) {
      Lsn best = kInvalidLsn;
      SegmentId best_seg = kInvalidSegment;
      for (const auto& [seg, response] : state->states[pg.pg()]) {
        if (!response.hydrated) continue;
        if (response.scl >= best || best_seg == kInvalidSegment) {
          best = response.scl;
          best_seg = seg;
        }
        for (const auto& range : response.truncations) {
          state->present.AddRange(range.start, range.end);
        }
        if (response.gc_floor != kInvalidLsn && response.gc_floor > 0) {
          // The GC floor is a chain-complete prefix that was archived
          // before eviction; its records exist even though the hot log
          // can no longer list them.
          state->present.AddRange(1, response.gc_floor);
        }
      }
      state->recovered_pgcl[pg.pg()] = best;
      state->best_segment[pg.pg()] = best_seg;
      if (first || best < min_pgcl) min_pgcl = best;
      first = false;
    }
    if (min_pgcl > 0) state->present.AddRange(1, min_pgcl);
    state->tail_floor = min_pgcl;
    state->phase = RecoveryState::Phase::kTails;
    ComputeRecoveryPoints(state);
  });
}

void DbInstance::ComputeRecoveryPoints(
    std::shared_ptr<RecoveryState> state) {
  if (state->generation != recovery_generation_ || driver_ == nullptr) return;
  if (state->phase != RecoveryState::Phase::kTails) return;
  // Fetch the (lsn, mtr-complete) shape of each PG's chain above the
  // floor from its best segment, then find the contiguous durable point
  // and the last complete MTR below it.
  state->tail_outstanding = 0;
  const Lsn floor = state->tail_floor;
  for (const auto& pg : state->geometry.pgs()) {
    const SegmentId best = state->best_segment[pg.pg()];
    const quorum::SegmentInfo* info = pg.FindSegment(best);
    if (info == nullptr) continue;
    state->tail_outstanding++;
    const Lsn pg_cap = state->recovered_pgcl[pg.pg()];
    driver_->FetchTailRecords(
        *info, floor,
        [this, state, pg_cap](storage::TailRecordsResponse response) {
          if (state->phase != RecoveryState::Phase::kTails) return;
          if (response.gc_floor != kInvalidLsn && response.gc_floor > 0) {
            // Chain-complete prefix GC'd between the probe and this
            // fetch: those LSNs exist (archived) even though the hot log
            // can no longer list them.
            state->present.AddRange(1, response.gc_floor);
          }
          for (const auto& rec : response.records) {
            if (rec.lsn > pg_cap) continue;  // beyond provable point
            state->present.Add(rec.lsn);
            state->tail_info[rec.lsn] = rec.mtr_complete;
          }
          if (--state->tail_outstanding == 0) {
            // All tails in: compute VCL (contiguous) and VDL (last
            // complete MTR at or below VCL).
            state->recovered_vcl =
                state->present.Empty() ? 0
                                       : state->present.ContiguousUpperBound(1);
            Lsn vdl = kInvalidLsn;
            for (const auto& [lsn, complete] : state->tail_info) {
              if (lsn <= state->recovered_vcl && complete) {
                vdl = std::max(vdl, lsn);
              }
            }
            if (vdl == kInvalidLsn && state->recovered_vcl > 0 &&
                state->tail_floor > 0) {
              // No MTR boundary in the window: deepen the scan.
              state->tail_floor = state->tail_floor / 2;
              ComputeRecoveryPoints(state);
              return;
            }
            state->recovered_vdl =
                vdl == kInvalidLsn ? state->recovered_vcl : vdl;
            state->truncation = log::TruncationRange{
                state->recovered_vdl + 1,
                state->recovered_vdl + kTruncationGap};
            state->phase = RecoveryState::Phase::kEpoch;
            control_plane_.increment_volume_epoch(
                [this, state](VolumeEpoch new_epoch) {
                  state->new_epoch = new_epoch;
                  InstallRecovery(state);
                });
          }
        });
  }
  if (state->tail_outstanding == 0) {
    // No reachable best segments (should not happen after a successful
    // probe round); restart.
    sim_->Schedule(options_.recovery_retry,
                   [this, state]() { StartRecovery(state); });
  } else {
    // Watchdog: if a tail fetch is lost (node crashed mid-recovery),
    // restart from probing.
    sim_->Schedule(options_.recovery_retry * 4, [this, state]() {
      if (state->phase == RecoveryState::Phase::kTails) {
        StartRecovery(state);
      }
    });
  }
}

void DbInstance::InstallRecovery(std::shared_ptr<RecoveryState> state) {
  if (state->generation != recovery_generation_ || driver_ == nullptr) return;
  if (state->phase != RecoveryState::Phase::kEpoch) return;
  if (++state->epoch_rounds > 20) {
    // Storage membership likely changed under us; restart recovery.
    StartRecovery(state);
    return;
  }
  // Record the new volume epoch + truncation range at every segment;
  // finalize once a write quorum of every PG (including its best segment,
  // whose post-truncation SCL seeds the new chain tail) has accepted.
  storage::VolumeEpochUpdateRequest base;
  base.new_epoch = state->new_epoch;
  base.truncation = state->truncation;
  for (const auto& pg : state->geometry.pgs()) {
    for (const auto& member : pg.AllMembers()) {
      if (state->epoch_acks[pg.pg()].contains(member.id)) continue;
      storage::VolumeEpochUpdateRequest request = base;
      request.segment = member.id;
      driver_->SendVolumeEpochUpdate(
          member, request,
          [this, state, pg_id = pg.pg(), seg = member.id](
              storage::VolumeEpochUpdateResponse response) {
            if (state->phase != RecoveryState::Phase::kEpoch) return;
            if (!response.status.ok() &&
                !response.status.IsStaleEpoch()) {
              return;
            }
            if (response.status.IsStaleEpoch() &&
                response.current_epoch > state->new_epoch) {
              // A newer incarnation exists; we lost the race.
              state->phase = RecoveryState::Phase::kDone;
              state->cb(Status::Fenced("newer volume epoch exists"));
              return;
            }
            state->epoch_acks[pg_id].insert(seg);
            Lsn& tail = state->post_truncation_scl[pg_id];
            tail = std::max(tail, response.scl);
          });
    }
  }
  sim_->Schedule(options_.recovery_retry, [this, state]() {
    if (state->phase != RecoveryState::Phase::kEpoch) return;
    bool all_ready = true;
    for (const auto& pg : state->geometry.pgs()) {
      const auto& acks = state->epoch_acks[pg.pg()];
      if (!pg.WriteSet().SatisfiedBy(acks) ||
          !acks.contains(state->best_segment[pg.pg()])) {
        all_ready = false;
        break;
      }
    }
    if (!all_ready) {
      InstallRecovery(state);
      return;
    }
    state->phase = RecoveryState::Phase::kDone;
    // Install the recovered state. Truncation annulled everything above
    // VDL, so the effective VCL equals the recovered VDL.
    const Lsn durable = state->recovered_vdl;
    driver_->SetGeometry(state->geometry, state->new_epoch);
    driver_->tracker().Reset(durable, durable, durable);
    // Each group's durable chain tail (from the truncation acks) seeds its
    // completion point so reads clamp correctly from the first query.
    for (const auto& pg : state->geometry.pgs()) {
      driver_->tracker().SeedPgcl(pg.pg(),
                                  state->post_truncation_scl[pg.pg()]);
    }
    next_lsn_ = state->truncation.end + 1;
    last_volume_lsn_ = durable;
    last_pg_lsn_.clear();
    for (const auto& pg : state->geometry.pgs()) {
      last_pg_lsn_[pg.pg()] = state->post_truncation_scl[pg.pg()];
    }
    driver_->Start();
    txns_.SetTxnIdFloor(next_lsn_);
    open_ = true;
    fenced_ = false;
    stats_.crash_recoveries++;
    AURORA_INFO << "instance " << id_ << " recovered: vdl=" << durable
                << " epoch=" << state->new_epoch << " next_lsn="
                << next_lsn_;
    state->cb(Status::OK());
  });
}

}  // namespace aurora::engine
