// The writer/replica buffer cache with the Aurora WAL eviction rule.
//
// §3.1: "Even though Aurora does not write blocks to storage from the
// database instance, it must support write-ahead logging by ensuring redo
// log records for dirty blocks have been made durable before discarding
// the block from cache." Concretely: a page whose page_lsn exceeds VDL may
// not be evicted; once page_lsn <= VDL the durable materialized version at
// storage is identical, so the page can simply be dropped (no write-back,
// ever).

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/types.h"
#include "src/storage/page.h"

namespace aurora::engine {

struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Eviction attempts refused because every LRU candidate was above VDL.
  uint64_t wal_blocked_evictions = 0;
};

/// LRU page cache. Pages are mutated in place by the engine (redo is
/// applied to the cached image as records are generated, §2.2).
class BufferCache {
 public:
  explicit BufferCache(size_t capacity_pages)
      : capacity_(capacity_pages) {}

  /// Looks up a page and promotes it in LRU order.
  storage::Page* Find(BlockId block);

  /// Peeks without LRU promotion (diagnostics).
  const storage::Page* Peek(BlockId block) const;

  /// Inserts (or replaces) a page; evicts LRU pages over capacity, but
  /// only those with page_lsn <= `vdl` (the WAL rule). The cache may
  /// temporarily exceed capacity when VDL lags.
  storage::Page* Insert(storage::Page page, Lsn vdl);

  /// Drops a specific page regardless of LSN (used on fencing).
  void Erase(BlockId block);

  /// Pins a cached page: pinned pages are never evicted (MTR application
  /// mutates several pages in one atomic step and each must stay resident
  /// until the last record is built — the latching of §3.2). No-op if the
  /// block is not cached.
  void Pin(BlockId block);
  void Unpin(BlockId block);

  /// Attempts to shrink to capacity given the current `vdl`.
  void TrimToCapacity(Lsn vdl);

  /// Crash: the cache is volatile.
  void Clear();

  size_t Size() const { return pages_.size(); }
  size_t capacity() const { return capacity_; }
  const BufferCacheStats& stats() const { return stats_; }
  void CountMiss() { stats_.misses++; }

 private:
  struct Entry {
    storage::Page page;
    std::list<BlockId>::iterator lru_it;
    int pins = 0;
  };

  void TrimTo(size_t target, Lsn vdl);

  size_t capacity_;
  std::unordered_map<BlockId, Entry> pages_;
  std::list<BlockId> lru_;  // front = most recent
  BufferCacheStats stats_;
};

}  // namespace aurora::engine
