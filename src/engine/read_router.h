// Read routing without quorum reads (§3.1).
//
// "Aurora does not do quorum reads. Through its bookkeeping of writes and
// consistency points, the database instance knows which segments have the
// last durable version of a data block and can request it directly...
// The database instance will usually issue a request to the segment with
// the lowest measured latency, but occasionally also query one of the
// others in parallel to ensure up to date read latency response times. If
// a request is taking longer than expected, [it] will issue a read to
// another storage node and accept whichever one returns first."

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace aurora::engine {

struct ReadRouterOptions {
  /// EWMA smoothing factor for response-time tracking.
  double ewma_alpha = 0.2;
  /// Probability of issuing an extra parallel probe to a non-best segment
  /// to keep its latency estimate fresh.
  double explore_probability = 0.02;
  /// Hedge fires when a request exceeds this multiple of the target's
  /// expected latency.
  double hedge_multiplier = 3.0;
  /// Floor/ceiling for the hedge delay.
  SimDuration min_hedge_delay = 500;
  SimDuration max_hedge_delay = 20 * kMillisecond;
  /// Expected latency assumed for segments never measured.
  SimDuration default_latency = 1 * kMillisecond;
};

/// Tracks per-segment read response times and picks targets.
class ReadRouter {
 public:
  explicit ReadRouter(ReadRouterOptions options = {}) : options_(options) {}

  void ObserveLatency(SegmentId segment, SimDuration latency);

  /// Marks a segment as suspect (timed out / errored); inflates its
  /// estimate so it is deprioritized until a success refreshes it.
  void Penalize(SegmentId segment);

  SimDuration ExpectedLatency(SegmentId segment) const;

  /// Orders `eligible` by expected latency (best first). With probability
  /// explore_probability the second-best is swapped to the front so its
  /// estimate stays fresh.
  std::vector<SegmentId> Rank(std::vector<SegmentId> eligible, Rng& rng) const;

  /// How long to wait on `segment` before hedging to the next candidate.
  SimDuration HedgeDelay(SegmentId segment) const;

  uint64_t hedged_reads() const { return hedged_reads_; }
  void CountHedge();

 private:
  ReadRouterOptions options_;
  std::map<SegmentId, double> ewma_;
  uint64_t hedged_reads_ = 0;
  /// Per-segment read latency series ("read.segment_us.<id>"), registered
  /// lazily so the registry only carries segments that actually served
  /// reads while metrics were enabled.
  std::map<SegmentId, Histogram*> segment_latency_;
};

}  // namespace aurora::engine
