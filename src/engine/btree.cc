#include "src/engine/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace aurora::engine {

std::string EncodeU64Value(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  return std::string(buf, 8);
}

Result<uint64_t> DecodeU64Value(const std::string& encoded) {
  if (encoded.size() != 8) return Status::Corruption("bad u64 value");
  uint64_t v;
  std::memcpy(&v, encoded.data(), 8);
  return v;
}

std::vector<StagedOp> BTree::BootstrapOps(
    BlockId root_block, const std::vector<uint64_t>& alloc_cursors) {
  std::vector<StagedOp> ops;
  // Meta page.
  {
    storage::PageOp format;
    format.type = storage::PageOpType::kFormat;
    format.page_type = storage::PageType::kMeta;
    ops.push_back({kMetaBlock, format});
    storage::PageOp root;
    root.type = storage::PageOpType::kInsert;
    root.key = kMetaRootKey;
    root.value = EncodeU64Value(root_block);
    ops.push_back({kMetaBlock, root});
    for (size_t pg = 0; pg < alloc_cursors.size(); ++pg) {
      storage::PageOp cursor;
      cursor.type = storage::PageOpType::kInsert;
      cursor.key = AllocCursorKey(static_cast<ProtectionGroupId>(pg));
      cursor.value = EncodeU64Value(alloc_cursors[pg]);
      ops.push_back({kMetaBlock, cursor});
    }
  }
  // Root leaf.
  {
    storage::PageOp format;
    format.type = storage::PageOpType::kFormat;
    format.page_type = storage::PageType::kLeaf;
    format.level = 0;
    ops.push_back({root_block, format});
  }
  return ops;
}

Result<BlockId> BTree::ChildFor(const storage::Page& page,
                                const std::string& key) {
  if (page.entries.empty()) {
    return Status::Corruption("internal page with no routers");
  }
  auto it = page.entries.upper_bound(key);
  if (it == page.entries.begin()) {
    return Status::Corruption("key below leftmost router");
  }
  --it;
  return DecodeU64Value(it->second);
}

void BTree::FindPath(const std::string& key,
                     std::function<void(Result<std::vector<BlockId>>)> cb) {
  fetcher_(kMetaBlock, [this, key, cb = std::move(cb)](
                           Result<storage::Page*> meta) {
    if (!meta.ok()) {
      cb(meta.status());
      return;
    }
    auto root_it = (*meta)->entries.find(kMetaRootKey);
    if (root_it == (*meta)->entries.end()) {
      cb(Status::Corruption("meta page missing root pointer"));
      return;
    }
    auto root = DecodeU64Value(root_it->second);
    if (!root.ok()) {
      cb(root.status());
      return;
    }
    DescendFrom(*root, key, {}, std::move(cb), 64);
  });
}

void BTree::DescendFrom(BlockId block, std::string key,
                        std::vector<BlockId> path,
                        std::function<void(Result<std::vector<BlockId>>)> cb,
                        int depth_budget) {
  if (depth_budget <= 0) {
    cb(Status::Internal("descent depth exceeded (corrupt tree?)"));
    return;
  }
  path.push_back(block);
  fetcher_(block, [this, key = std::move(key), path = std::move(path),
                   cb = std::move(cb),
                   depth_budget](Result<storage::Page*> page) mutable {
    if (!page.ok()) {
      cb(page.status());
      return;
    }
    storage::Page* p = *page;
    if (p->type == storage::PageType::kLeaf) {
      cb(std::move(path));
      return;
    }
    if (p->type != storage::PageType::kInternal) {
      cb(Status::Corruption("non-tree page in descent"));
      return;
    }
    auto child = ChildFor(*p, key);
    if (!child.ok()) {
      cb(child.status());
      return;
    }
    DescendFrom(*child, std::move(key), std::move(path), std::move(cb),
                depth_budget - 1);
  });
}

Result<std::vector<BlockId>> BTree::FindPathSync(
    const std::string& key) const {
  storage::Page* meta = cache_(kMetaBlock);
  if (meta == nullptr) return Status::Aborted("retry: meta not cached");
  auto root_it = meta->entries.find(kMetaRootKey);
  if (root_it == meta->entries.end()) {
    return Status::Corruption("meta page missing root pointer");
  }
  auto block = DecodeU64Value(root_it->second);
  if (!block.ok()) return block.status();
  std::vector<BlockId> path;
  for (int depth = 0; depth < 64; ++depth) {
    path.push_back(*block);
    storage::Page* page = cache_(*block);
    if (page == nullptr) return Status::Aborted("retry: page not cached");
    if (page->type == storage::PageType::kLeaf) return path;
    if (page->type != storage::PageType::kInternal) {
      return Status::Corruption("non-tree page in descent");
    }
    auto child = ChildFor(*page, key);
    if (!child.ok()) return child.status();
    block = child;
  }
  return Status::Internal("descent depth exceeded (corrupt tree?)");
}

Result<std::vector<StagedOp>> BTree::PlanInsert(
    const std::vector<BlockId>& path, const std::string& key,
    const std::string& value, const BlockAllocator& alloc) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  std::vector<StagedOp> ops;

  storage::Page* leaf = cache_(path.back());
  if (leaf == nullptr || leaf->type != storage::PageType::kLeaf) {
    return Status::Aborted("retry: leaf not cached or path stale");
  }
  storage::PageOp insert;
  insert.type = storage::PageOpType::kInsert;
  insert.key = key;
  insert.value = value;
  const bool update_in_place = leaf->entries.contains(key);
  if (update_in_place || leaf->entries.size() + 1 <= options_.max_entries) {
    ops.push_back({leaf->id, insert});
    return ops;
  }

  // Split cascade. `pending_key/pending_child` is the router to add to the
  // next level up.
  // Build the merged key list for the leaf.
  std::vector<std::string> keys;
  keys.reserve(leaf->entries.size() + 1);
  for (const auto& [k, v] : leaf->entries) keys.push_back(k);
  keys.insert(std::upper_bound(keys.begin(), keys.end(), key), key);

  std::string pivot = keys[keys.size() / 2];
  const BlockId right_block = alloc(&ops);
  if (right_block == kInvalidBlock) {
    return Status::OutOfRange("volume full: grow the volume to continue");
  }
  splits_++;
  {
    storage::PageOp format;
    format.type = storage::PageOpType::kFormat;
    format.page_type = storage::PageType::kLeaf;
    format.level = 0;
    ops.push_back({right_block, format});
    // Move upper half: inserts on the right, truncate on the left. The
    // new key's op above already targeted the leaf; if it belongs right,
    // retarget it.
    for (auto it = leaf->entries.lower_bound(pivot);
         it != leaf->entries.end(); ++it) {
      storage::PageOp move;
      move.type = storage::PageOpType::kInsert;
      move.key = it->first;
      move.value = it->second;
      ops.push_back({right_block, move});
    }
    // The new key joins whichever side it belongs to — after the format
    // and entry moves, so nothing wipes it.
    ops.push_back({key >= pivot ? right_block : leaf->id, insert});
    storage::PageOp truncate;
    truncate.type = storage::PageOpType::kTruncateFrom;
    truncate.key = pivot;
    ops.push_back({leaf->id, truncate});
    storage::PageOp links;
    links.type = storage::PageOpType::kSetLinks;
    links.next = leaf->next;
    links.prev = leaf->id;
    ops.push_back({right_block, links});
    storage::PageOp left_links;
    left_links.type = storage::PageOpType::kSetLinks;
    left_links.next = right_block;
    left_links.prev = leaf->prev;
    ops.push_back({leaf->id, left_links});
  }

  std::string pending_key = pivot;
  BlockId pending_child = right_block;
  uint16_t child_level = 0;

  // Walk up the path inserting routers, splitting internals as needed.
  for (size_t i = path.size() - 1; i-- > 0;) {
    storage::Page* node = cache_(path[i]);
    if (node == nullptr || node->type != storage::PageType::kInternal) {
      return Status::Aborted("retry: internal page not cached");
    }
    storage::PageOp router;
    router.type = storage::PageOpType::kInsert;
    router.key = pending_key;
    router.value = EncodeU64Value(pending_child);
    if (node->entries.size() + 1 <= options_.max_entries) {
      ops.push_back({node->id, router});
      return ops;
    }
    // Split the internal node.
    std::vector<std::string> node_keys;
    node_keys.reserve(node->entries.size() + 1);
    for (const auto& [k, v] : node->entries) node_keys.push_back(k);
    node_keys.insert(
        std::upper_bound(node_keys.begin(), node_keys.end(), pending_key),
        pending_key);
    std::string node_pivot = node_keys[node_keys.size() / 2];
    const BlockId new_right = alloc(&ops);
    if (new_right == kInvalidBlock) {
      return Status::OutOfRange("volume full: grow the volume to continue");
    }
    splits_++;
    storage::PageOp format;
    format.type = storage::PageOpType::kFormat;
    format.page_type = storage::PageType::kInternal;
    format.level = node->level;
    ops.push_back({new_right, format});
    for (auto it = node->entries.lower_bound(node_pivot);
         it != node->entries.end(); ++it) {
      storage::PageOp move;
      move.type = storage::PageOpType::kInsert;
      move.key = it->first;
      move.value = it->second;
      ops.push_back({new_right, move});
    }
    // Route the pending router to the correct side.
    ops.push_back(
        {pending_key >= node_pivot ? new_right : node->id, router});
    storage::PageOp truncate;
    truncate.type = storage::PageOpType::kTruncateFrom;
    truncate.key = node_pivot;
    ops.push_back({node->id, truncate});
    pending_key = node_pivot;
    pending_child = new_right;
    child_level = node->level;
    if (i == 0) {
      // Root split: allocate a new root.
      const BlockId new_root = alloc(&ops);
      if (new_root == kInvalidBlock) {
        return Status::OutOfRange("volume full: grow the volume to continue");
      }
      storage::PageOp root_format;
      root_format.type = storage::PageOpType::kFormat;
      root_format.page_type = storage::PageType::kInternal;
      root_format.level = static_cast<uint16_t>(child_level + 1);
      ops.push_back({new_root, root_format});
      storage::PageOp left_router;
      left_router.type = storage::PageOpType::kInsert;
      left_router.key = "";  // sentinel: leftmost child
      left_router.value = EncodeU64Value(node->id);
      ops.push_back({new_root, left_router});
      storage::PageOp right_router;
      right_router.type = storage::PageOpType::kInsert;
      right_router.key = pending_key;
      right_router.value = EncodeU64Value(pending_child);
      ops.push_back({new_root, right_router});
      storage::PageOp meta;
      meta.type = storage::PageOpType::kInsert;
      meta.key = kMetaRootKey;
      meta.value = EncodeU64Value(new_root);
      ops.push_back({kMetaBlock, meta});
      return ops;
    }
  }
  // path.size() == 1: the leaf was the root.
  const BlockId new_root = alloc(&ops);
  if (new_root == kInvalidBlock) {
    return Status::OutOfRange("volume full: grow the volume to continue");
  }
  storage::PageOp root_format;
  root_format.type = storage::PageOpType::kFormat;
  root_format.page_type = storage::PageType::kInternal;
  root_format.level = 1;
  ops.push_back({new_root, root_format});
  storage::PageOp left_router;
  left_router.type = storage::PageOpType::kInsert;
  left_router.key = "";
  left_router.value = EncodeU64Value(path.back());
  ops.push_back({new_root, left_router});
  storage::PageOp right_router;
  right_router.type = storage::PageOpType::kInsert;
  right_router.key = pending_key;
  right_router.value = EncodeU64Value(pending_child);
  ops.push_back({new_root, right_router});
  storage::PageOp meta;
  meta.type = storage::PageOpType::kInsert;
  meta.key = kMetaRootKey;
  meta.value = EncodeU64Value(new_root);
  ops.push_back({kMetaBlock, meta});
  return ops;
}

void BTree::GetEntry(const std::string& key,
                     std::function<void(Result<std::string>)> cb) {
  FindPath(key, [this, key, cb = std::move(cb)](
                    Result<std::vector<BlockId>> path) {
    if (!path.ok()) {
      cb(path.status());
      return;
    }
    storage::Page* leaf = cache_(path->back());
    if (leaf == nullptr) {
      cb(Status::Aborted("retry: leaf evicted"));
      return;
    }
    auto it = leaf->entries.find(key);
    if (it == leaf->entries.end()) {
      cb(Status::NotFound("key absent"));
      return;
    }
    cb(it->second);
  });
}

void BTree::ScanEntries(
    const std::string& lo, const std::string& hi, size_t limit,
    std::function<void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  FindPath(lo, [this, lo, hi, limit, cb = std::move(cb)](
                   Result<std::vector<BlockId>> path) {
    if (!path.ok()) {
      cb(path.status());
      return;
    }
    ScanStep(path->back(), lo, hi, limit, {}, std::move(cb));
  });
}

void BTree::ScanStep(
    BlockId leaf_block, std::string lo, std::string hi, size_t limit,
    std::vector<std::pair<std::string, std::string>> acc,
    std::function<void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  fetcher_(leaf_block, [this, lo = std::move(lo), hi = std::move(hi), limit,
                        acc = std::move(acc),
                        cb = std::move(cb)](Result<storage::Page*> page) mutable {
    if (!page.ok()) {
      cb(page.status());
      return;
    }
    storage::Page* leaf = *page;
    for (auto it = leaf->entries.lower_bound(lo);
         it != leaf->entries.end(); ++it) {
      if (it->first > hi || acc.size() >= limit) {
        cb(std::move(acc));
        return;
      }
      acc.emplace_back(it->first, it->second);
    }
    if (leaf->next == kInvalidBlock || acc.size() >= limit) {
      cb(std::move(acc));
      return;
    }
    ScanStep(leaf->next, std::move(lo), std::move(hi), limit, std::move(acc),
             std::move(cb));
  });
}

}  // namespace aurora::engine
