// The storage driver inside a database instance (§2.2).
//
// "Changes ... are periodically flushed to a storage driver to be made
// durable. Inside the driver, they are shuffled to individual write
// buffers for each storage node storing segments for the data volume. The
// driver asynchronously issues writes, receives acknowledgments, and
// establishes consistency points."
//
// The driver owns: per-segment boxcar batchers, the consistency tracker
// (SCL→PGCL→VCL→VDL), unacknowledged-write retransmission, read routing
// with hedging, and the epoch vector attached to every request. It never
// blocks: every interaction is an asynchronous message plus local state.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/engine/consistency_tracker.h"
#include "src/engine/read_router.h"
#include "src/log/boxcar.h"
#include "src/log/record.h"
#include "src/quorum/geometry.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/storage/messages.h"
#include "src/storage/storage_node.h"

namespace aurora::engine {

struct DriverOptions {
  log::BoxcarOptions boxcar;
  /// Retransmission sweep for writes missing acknowledgements; gossip
  /// usually beats it, so this is a safety net.
  SimDuration retry_interval = 50 * kMillisecond;
  size_t retry_batch = 512;
  /// Overall deadline for one routed read (hedges included). Requests to
  /// crashed nodes are silently lost; without a deadline a read against a
  /// fully dark protection group would hang forever.
  SimDuration read_deadline = 5 * kSecond;
  ReadRouterOptions router;
  /// A protection group whose oldest outstanding record has not advanced
  /// for this long has (transiently) lost its write quorum: the PG is
  /// marked degraded until the quorum resumes progress.
  SimDuration degraded_after = 250 * kMillisecond;
  /// While a PG is degraded, its writes park in `retained_` awaiting
  /// quorum. The bound applies per degraded PG: once any degraded PG
  /// holds this many parked records the instance backpressures (rejects
  /// new writes) instead of growing memory without limit. Healthy-PG
  /// traffic never counts against the budget.
  size_t max_parked_records = 8192;
  /// Write-ack coalescing window. 0 (the default) evaluates consistency
  /// points on every ack, exactly as before. When > 0, each ack still
  /// performs its per-ack duties immediately (fencing, hydration state,
  /// SCL observation, latency accounting) but the expensive volume-wide
  /// pass — tracker advance, retained-record pruning, degraded-mode
  /// re-evaluation, commit wakeup — runs once per window instead of once
  /// per ack. Trades up to one window of commit-ack latency for O(acks)
  /// → O(advances) consistency-point work under fan-out load. Opt-in;
  /// with six acks per record the default C7 configuration otherwise
  /// runs six advance passes per user write.
  SimDuration ack_coalesce_window = 0;
};

struct DriverStats {
  uint64_t records_sent = 0;
  uint64_t write_requests = 0;
  uint64_t acks_received = 0;
  uint64_t stale_epoch_acks = 0;
  uint64_t retransmissions = 0;
  uint64_t reads_issued = 0;
  uint64_t read_failures = 0;
  uint64_t degraded_entries = 0;
  /// Consistency-point passes actually executed. With coalescing off this
  /// tracks successful acks; with a window it is the coalesced count.
  uint64_t advance_passes = 0;
};

/// Asynchronous quorum-write / routed-read client for one database
/// instance. Recreated from scratch on crash recovery (all state here is
/// the "local ephemeral state" of §2.4).
class StorageDriver {
 public:
  using AdvanceCallback = std::function<void()>;
  using FencedCallback = std::function<void()>;
  using ReadCallback = std::function<void(Result<storage::Page>)>;

  StorageDriver(sim::Simulator* sim, sim::Network* network, NodeId self,
                storage::NodeResolver resolver, DriverOptions options = {});

  /// Installs the volume geometry and epoch vector; (re)configures the
  /// tracker's quorum shapes. Call at open and after membership changes
  /// or volume growth.
  void SetGeometry(const quorum::VolumeGeometry& geometry,
                   VolumeEpoch volume_epoch);
  void UpdatePgConfig(const quorum::PgConfig& config);

  const quorum::VolumeGeometry& geometry() const { return geometry_; }
  VolumeEpoch volume_epoch() const { return volume_epoch_; }

  /// Called whenever VCL/VDL advance (wakes the commit thread, §2.3).
  void SetAdvanceCallback(AdvanceCallback cb) { on_advance_ = std::move(cb); }
  /// Called when storage rejects this instance's epoch: a newer
  /// incarnation exists and this one is boxed out (§2.4).
  void SetFencedCallback(FencedCallback cb) { on_fenced_ = std::move(cb); }
  /// Called for every successful write acknowledgement — in-band liveness
  /// evidence consumed by the health monitor.
  void SetAckObserver(std::function<void(SegmentId, bool)> cb) {
    ack_observer_ = std::move(cb);
  }

  /// Submits a chained batch of records (one MTR or commit record). The
  /// records must carry already-allocated LSNs and PG assignments.
  void SubmitRecords(const std::vector<log::RedoRecord>& records);

  /// Reads the durable version of `block` at `read_lsn` from the best
  /// eligible segment, hedging on slowness (§3.1). `pgmrpl` piggybacks
  /// the instance's minimum read point.
  void ReadBlock(BlockId block, Lsn read_lsn, Lsn pgmrpl, ReadCallback cb);

  /// Starts the retransmission sweep timer.
  void Start();
  /// Stops issuing (fenced or crashed). In-flight callbacks are dropped.
  void Stop();

  /// True once this driver has seen a write ack proving the segment
  /// finished hydrating. kUnknown (no ack yet) reads as false; the read
  /// path only *excludes* segments known to be mid-hydration, so the
  /// conservative default never changes routing for healthy segments.
  bool SegmentKnownHydrated(SegmentId segment) const;

  // -- Degraded mode (write-quorum loss; DESIGN.md §7) --------------------
  /// False while some degraded PG's parked-record budget is exhausted:
  /// the instance must backpressure new writes. The refusal is
  /// necessarily instance-wide (admission happens before the target PG
  /// is known), but the budget counts only records parked on degraded
  /// PGs, so healthy-PG throughput cannot trip it.
  bool AcceptingWrites() const;
  bool IsDegraded(ProtectionGroupId pg) const {
    return degraded_since_.contains(pg);
  }
  size_t DegradedPgCount() const { return degraded_since_.size(); }
  /// Records retained for PGs currently degraded — the memory actually
  /// parked awaiting write-quorum recovery (in-flight records of healthy
  /// PGs are excluded).
  size_t ParkedRecords() const;

  ConsistencyTracker& tracker() { return tracker_; }
  const DriverStats& stats() const { return stats_; }
  Histogram& write_ack_latency() { return write_ack_latency_; }
  Histogram& read_latency() { return read_latency_; }
  ReadRouter& router() { return router_; }

  // -- Control-plane helpers (recovery, membership) -----------------------
  void ProbeSegmentState(
      const quorum::SegmentInfo& segment,
      std::function<void(storage::SegmentStateResponse)> cb);
  void FetchTailRecords(const quorum::SegmentInfo& segment, Lsn from_lsn,
                        std::function<void(storage::TailRecordsResponse)> cb);
  void SendVolumeEpochUpdate(
      const quorum::SegmentInfo& segment,
      const storage::VolumeEpochUpdateRequest& request,
      std::function<void(storage::VolumeEpochUpdateResponse)> cb);

 private:
  /// What the last write ack said about the segment's hydration. Unknown
  /// until the first ack (fresh channel or fresh driver after recovery).
  enum class ChannelHydration { kUnknown, kHydrated, kHydrating };

  struct SegmentChannel {
    quorum::SegmentInfo info;
    ProtectionGroupId pg = 0;
    std::unique_ptr<log::BoxcarBatcher> boxcar;
    Lsn max_sent = kInvalidLsn;
    ChannelHydration hydration = ChannelHydration::kUnknown;
  };

  /// Per-PG progress watch feeding degraded-mode detection.
  struct QuorumWatch {
    Lsn oldest = kInvalidLsn;
    SimTime since = 0;
  };

  void EnsureChannels(const quorum::PgConfig& config);
  void SendBatch(SegmentChannel* channel,
                 std::vector<log::RedoRecord> records);
  void HandleAck(SegmentChannel* channel, const storage::WriteAck& ack,
                 SimTime sent_at);
  /// The volume-wide consistency-point pass: tracker advance + retained
  /// pruning + degraded re-evaluation + commit wakeup. Runs per ack, or
  /// once per `ack_coalesce_window` when coalescing is on.
  void AdvancePass();
  void RetrySweep();
  void UpdateDegraded();
  void ClearDegraded(ProtectionGroupId pg, SimTime now);
  void IssueRead(std::shared_ptr<struct ReadState> state, size_t rank_index);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId self_;
  storage::NodeResolver resolver_;
  DriverOptions options_;
  quorum::VolumeGeometry geometry_;
  VolumeEpoch volume_epoch_ = 0;
  bool running_ = false;

  ConsistencyTracker tracker_;
  ReadRouter router_;
  Rng rng_;

  std::map<SegmentId, SegmentChannel> channels_;
  /// Records not yet known globally durable (lsn > VCL): the
  /// retransmission source. LSNs are allocated monotonically by this
  /// instance, so the deque stays sorted — O(1) append on submit, O(1)
  /// front-pruning as VCL advances, binary search for retransmission.
  std::deque<log::RedoRecord> retained_;
  /// Per-PG slice of `retained_` (kept in lockstep with the deque) so
  /// degraded-mode backpressure can budget each degraded PG's parked
  /// records without charging healthy-PG traffic.
  std::map<ProtectionGroupId, size_t> retained_by_pg_;

  /// True while a coalesced AdvancePass is scheduled but not yet run.
  bool advance_pending_ = false;
  AdvanceCallback on_advance_;
  FencedCallback on_fenced_;
  std::function<void(SegmentId, bool)> ack_observer_;
  /// PGs currently degraded (write quorum stalled) → when they entered.
  std::map<ProtectionGroupId, SimTime> degraded_since_;
  std::map<ProtectionGroupId, QuorumWatch> quorum_watch_;
  DriverStats stats_;
  Histogram write_ack_latency_;
  Histogram read_latency_;

  // Registry handles (resolved once at construction; see DESIGN.md §5 for
  // the metric name catalogue). VCL/VDL advance latency is the cadence of
  // the local bookkeeping: the gap between successive advances.
  metrics::Counter* m_fanout_records_;
  metrics::Counter* m_write_requests_;
  metrics::Counter* m_acks_;
  metrics::Counter* m_stale_epoch_acks_;
  metrics::Counter* m_retransmitted_;
  metrics::Counter* m_reads_issued_;
  metrics::Counter* m_read_failures_;
  metrics::Gauge* m_retained_depth_;
  metrics::Counter* m_degraded_entered_;
  metrics::Gauge* m_degraded_pgs_;
  metrics::Gauge* m_parked_records_;
  Histogram* m_degraded_stall_us_;
  Histogram* m_write_ack_us_;
  Histogram* m_read_us_;
  Histogram* m_vcl_advance_gap_us_;
  Histogram* m_vdl_advance_gap_us_;
  SimTime last_vcl_advance_at_ = 0;
  SimTime last_vdl_advance_at_ = 0;
};

}  // namespace aurora::engine
