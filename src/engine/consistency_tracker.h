// Local bookkeeping of storage consistency points (§2.3, Figure 3).
//
// "No consensus is required to advance SCL, PGCL, or VCL — all that is
// required is bookkeeping by each individual storage node and local
// ephemeral state on the database instance based on the communication
// between the database and storage nodes."
//
// The tracker lives in the writer instance. It observes per-segment SCLs
// from write acknowledgements and computes:
//  * PGCL per protection group — the highest LSN at which that group has
//    made all prior group writes durable (write-quorum over SCLs);
//  * VCL — the highest LSN such that EVERY record at or below it met
//    quorum in its group (Figure 3: PG1@103, PG2@104 ⇒ VCL=104);
//  * VDL — the highest MTR-completion LSN <= VCL (§3.2).
// All three are ephemeral and recomputed from storage at crash recovery.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/common/types.h"
#include "src/quorum/quorum_set.h"

namespace aurora::engine {

/// Per-PG tracking state.
///
/// LSNs are allocated monotonically by the single writer, so the issued
/// set is a monotonic deque (pushed at the back in order, drained from the
/// front as PGCL advances) rather than a node-based std::set — no
/// allocation per record on the hot path.
struct PgTracking {
  quorum::QuorumSet write_set;
  std::vector<SegmentId> members;
  /// Latest SCL observed from each member (ack piggyback).
  std::map<SegmentId, Lsn> scls;
  /// Record LSNs issued to this PG and not yet covered by its PGCL,
  /// ascending.
  std::deque<Lsn> outstanding;
  Lsn pgcl = kInvalidLsn;
};

class ConsistencyTracker {
 public:
  /// Registers or refreshes a PG's quorum shape (initial setup, membership
  /// change, volume growth). Existing SCL observations for surviving
  /// members are kept.
  void ConfigurePg(ProtectionGroupId pg, quorum::QuorumSet write_set,
                   std::vector<SegmentId> members);

  /// Observes a segment's SCL from a write ack or state probe.
  void ObserveScl(ProtectionGroupId pg, SegmentId segment, Lsn scl);

  /// Notes that `lsn` was issued to `pg` (outstanding until durable).
  void RecordIssued(ProtectionGroupId pg, Lsn lsn);

  /// Notes that `lsn` closes a mini-transaction (candidate VDL point).
  void RecordMtrComplete(Lsn lsn);

  /// Highest LSN allocated so far (VCL never exceeds it).
  void SetMaxAllocated(Lsn lsn);

  /// Recomputes PGCLs, VCL, VDL. Returns true if VCL or VDL advanced.
  bool Advance();

  Lsn pgcl(ProtectionGroupId pg) const;
  Lsn vcl() const { return vcl_; }
  /// VDL is written only on the writer's event shard, but client sessions
  /// on other shards peek it for the anchored-read fast path, so the
  /// accessor/writer pair goes through relaxed atomics. Routing decisions
  /// only consume one-way-monotonic facts (has a VDL appeared / passed an
  /// anchor already durable to this session), so a stale peek is safe and
  /// schedule-deterministic.
  Lsn vdl() const {
    return std::atomic_ref<Lsn>(const_cast<Lsn&>(vdl_))
        .load(std::memory_order_relaxed);
  }
  Lsn max_allocated() const { return max_allocated_; }

  /// Installs recovered consistency points (crash recovery, §2.4) and
  /// clears issued/MTR state from the previous incarnation.
  void Reset(Lsn vcl, Lsn vdl, Lsn max_allocated);

  /// Seeds a PG's completion point (recovery knows each group's durable
  /// chain tail from the truncation acknowledgements).
  void SeedPgcl(ProtectionGroupId pg, Lsn pgcl);

  /// Test-only: forces VDL forward to violate VDL <= VCL, so tests can
  /// prove the invariant auditor actually fires (never called by the
  /// production paths).
  void CorruptVdlForTest(Lsn vdl) { StoreVdl(vdl); }

  /// SCL last observed for a segment (kInvalidLsn if never) — feeds read
  /// routing ("the instance knows which segments have the last durable
  /// version", §3.1).
  Lsn SclOf(ProtectionGroupId pg, SegmentId segment) const;

  const std::map<ProtectionGroupId, PgTracking>& pgs() const { return pgs_; }

 private:
  Lsn ComputePgcl(const PgTracking& tracking) const;

  /// All vdl_ writes go through here (see vdl() above); same-shard reads
  /// may still touch the plain member — they are sequenced with the store.
  void StoreVdl(Lsn vdl) {
    std::atomic_ref<Lsn>(vdl_).store(vdl, std::memory_order_relaxed);
  }

  std::map<ProtectionGroupId, PgTracking> pgs_;
  /// MTR completion points, ascending (monotonic LSN allocation); drained
  /// from the front as VCL passes them in Advance().
  std::deque<Lsn> mtr_points_;
  /// Scratch for ComputePgcl, kept across calls so the per-ack Advance()
  /// does not allocate.
  mutable std::vector<std::pair<Lsn, SegmentId>> by_scl_scratch_;
  Lsn vcl_ = kInvalidLsn;
  Lsn vdl_ = kInvalidLsn;
  Lsn max_allocated_ = kInvalidLsn;
};

}  // namespace aurora::engine
