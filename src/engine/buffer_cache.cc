#include "src/engine/buffer_cache.h"

namespace aurora::engine {

storage::Page* BufferCache::Find(BlockId block) {
  auto it = pages_.find(block);
  if (it == pages_.end()) return nullptr;
  stats_.hits++;
  lru_.erase(it->second.lru_it);
  lru_.push_front(block);
  it->second.lru_it = lru_.begin();
  return &it->second.page;
}

const storage::Page* BufferCache::Peek(BlockId block) const {
  auto it = pages_.find(block);
  return it == pages_.end() ? nullptr : &it->second.page;
}

storage::Page* BufferCache::Insert(storage::Page page, Lsn vdl) {
  const BlockId block = page.id;
  auto it = pages_.find(block);
  if (it != pages_.end()) {
    it->second.page = std::move(page);
    lru_.erase(it->second.lru_it);
    lru_.push_front(block);
    it->second.lru_it = lru_.begin();
    return &it->second.page;
  }
  // Make room BEFORE inserting so the returned pointer cannot be evicted
  // by its own insertion.
  if (capacity_ > 0 && pages_.size() >= capacity_) {
    TrimTo(capacity_ - 1, vdl);
  }
  lru_.push_front(block);
  auto [inserted, ok] =
      pages_.emplace(block, Entry{std::move(page), lru_.begin()});
  return &inserted->second.page;
}

void BufferCache::Pin(BlockId block) {
  auto it = pages_.find(block);
  if (it != pages_.end()) it->second.pins++;
}

void BufferCache::Unpin(BlockId block) {
  auto it = pages_.find(block);
  if (it != pages_.end() && it->second.pins > 0) it->second.pins--;
}

void BufferCache::Erase(BlockId block) {
  auto it = pages_.find(block);
  if (it == pages_.end()) return;
  lru_.erase(it->second.lru_it);
  pages_.erase(it);
}

void BufferCache::TrimToCapacity(Lsn vdl) { TrimTo(capacity_, vdl); }

void BufferCache::TrimTo(size_t target, Lsn vdl) {
  if (pages_.size() <= target) return;
  // Walk from the LRU end, skipping pages the WAL rule pins (page_lsn >
  // VDL: their redo is not yet durable).
  auto it = lru_.rbegin();
  while (pages_.size() > target && it != lru_.rend()) {
    const BlockId block = *it;
    auto entry = pages_.find(block);
    ++it;  // advance before any erase invalidates the position
    if (entry == pages_.end()) continue;
    if (entry->second.pins > 0) continue;  // latched by an open MTR
    if (entry->second.page.page_lsn > vdl) {
      stats_.wal_blocked_evictions++;
      continue;
    }
    // reverse_iterator.base() quirks: erase via the stored iterator.
    lru_.erase(entry->second.lru_it);
    pages_.erase(entry);
    stats_.evictions++;
    it = lru_.rbegin();  // restart: erase invalidated reverse positions
  }
}

void BufferCache::Clear() {
  pages_.clear();
  lru_.clear();
}

}  // namespace aurora::engine
