#include "src/engine/storage_driver.h"

#include <algorithm>

#include "src/common/logging.h"

namespace aurora::engine {

StorageDriver::StorageDriver(sim::Simulator* sim, sim::Network* network,
                             NodeId self, storage::NodeResolver resolver,
                             DriverOptions options)
    : sim_(sim),
      network_(network),
      self_(self),
      resolver_(std::move(resolver)),
      options_(options),
      router_(options.router),
      rng_(sim->rng().Fork()) {
  auto& registry = metrics::Registry::Global();
  m_fanout_records_ = registry.GetCounter("driver.fanout_records");
  m_write_requests_ = registry.GetCounter("driver.write_requests");
  m_acks_ = registry.GetCounter("driver.acks");
  m_stale_epoch_acks_ = registry.GetCounter("driver.stale_epoch_acks");
  m_retransmitted_ = registry.GetCounter("driver.retransmitted_records");
  m_reads_issued_ = registry.GetCounter("read.issued");
  m_read_failures_ = registry.GetCounter("read.failures");
  m_retained_depth_ = registry.GetGauge("driver.retained_depth");
  m_degraded_entered_ = registry.GetCounter("aurora.degraded.entered");
  m_degraded_pgs_ = registry.GetGauge("aurora.degraded.active_pgs");
  m_parked_records_ = registry.GetGauge("aurora.degraded.parked_records");
  m_degraded_stall_us_ = registry.GetHistogram("aurora.degraded.stall_us");
  m_write_ack_us_ = registry.GetHistogram("driver.write_ack_us");
  m_read_us_ = registry.GetHistogram("read.latency_us");
  m_vcl_advance_gap_us_ = registry.GetHistogram("engine.vcl_advance_gap_us");
  m_vdl_advance_gap_us_ = registry.GetHistogram("engine.vdl_advance_gap_us");
}

void StorageDriver::SetGeometry(const quorum::VolumeGeometry& geometry,
                                VolumeEpoch volume_epoch) {
  geometry_ = geometry;
  volume_epoch_ = volume_epoch;
  for (const auto& pg : geometry_.pgs()) {
    UpdatePgConfig(pg);
  }
}

void StorageDriver::UpdatePgConfig(const quorum::PgConfig& config) {
  (void)geometry_.UpdatePg(config);
  std::vector<SegmentId> members;
  for (const auto& m : config.AllMembers()) members.push_back(m.id);
  tracker_.ConfigurePg(config.pg(), config.WriteSet(), std::move(members));
  EnsureChannels(config);
}

void StorageDriver::EnsureChannels(const quorum::PgConfig& config) {
  for (const auto& member : config.AllMembers()) {
    auto it = channels_.find(member.id);
    if (it != channels_.end()) {
      it->second.info = member;  // node placement may have been updated
      continue;
    }
    SegmentChannel channel;
    channel.info = member;
    channel.pg = config.pg();
    channels_.emplace(member.id, std::move(channel));
    SegmentChannel* raw = &channels_[member.id];
    raw->boxcar = std::make_unique<log::BoxcarBatcher>(
        sim_, options_.boxcar,
        [this, raw](std::vector<log::RedoRecord> batch) {
          SendBatch(raw, std::move(batch));
        });
  }
}

void StorageDriver::SubmitRecords(
    const std::vector<log::RedoRecord>& records) {
  for (const auto& record : records) {
    tracker_.SetMaxAllocated(record.lsn);
    tracker_.RecordIssued(record.pg, record.lsn);
    if (record.IsMtrComplete()) tracker_.RecordMtrComplete(record.lsn);
    // LSNs are allocated in ascending order; crash recovery rebuilds the
    // driver from scratch, so the deque never sees a regression.
    if (retained_.empty() || record.lsn > retained_.back().lsn) {
      retained_.push_back(record);
      ++retained_by_pg_[record.pg];
    }
    // Fan out to every member (including both alternatives of a slot
    // mid-membership-change; quorum evaluation handles the algebra).
    const auto& config = geometry_.Pg(record.pg);
    for (const auto& member : config.AllMembers()) {
      auto it = channels_.find(member.id);
      if (it == channels_.end()) continue;
      it->second.max_sent = std::max(it->second.max_sent, record.lsn);
      it->second.boxcar->Add(record);
      stats_.records_sent++;
      AURORA_COUNT(m_fanout_records_, 1);
    }
  }
  AURORA_GAUGE_SET(m_retained_depth_, retained_.size());
}

void StorageDriver::SendBatch(SegmentChannel* channel,
                              std::vector<log::RedoRecord> records) {
  if (!running_) return;
  // The request is shared, not copied, into the RPC closures: the batch
  // vector (and each record's refcounted payload) crosses the simulated
  // wire without duplication.
  auto request = std::make_shared<storage::WriteRequest>();
  request->segment = channel->info.id;
  request->epochs = EpochVector{volume_epoch_,
                                geometry_.Pg(channel->pg).epoch()};
  request->records = std::move(records);
  stats_.write_requests++;
  AURORA_COUNT(m_write_requests_, 1);
  const SimTime sent_at = sim_->Now();
  const NodeId target = channel->info.node;
  sim::UnaryCall<storage::WriteAck>(
      network_, self_, target, request->SerializedSize(),
      [this, target, request](sim::ReplyFn<storage::WriteAck> reply) {
        storage::StorageNode* node = resolver_ ? resolver_(target) : nullptr;
        if (node == nullptr) {
          reply(storage::WriteAck{request->segment,
                                  Status::Unavailable("unresolved node"),
                                  kInvalidLsn});
          return;
        }
        node->HandleWrite(*request, std::move(reply));
      },
      [](const storage::WriteAck& a) { return a.SerializedSize(); },
      [this, channel, sent_at](storage::WriteAck ack) {
        HandleAck(channel, ack, sent_at);
      });
}

void StorageDriver::HandleAck(SegmentChannel* channel,
                              const storage::WriteAck& ack, SimTime sent_at) {
  if (!running_) return;
  stats_.acks_received++;
  AURORA_COUNT(m_acks_, 1);
  if (ack.status.IsStaleEpoch() || ack.status.IsFenced()) {
    stats_.stale_epoch_acks++;
    AURORA_COUNT(m_stale_epoch_acks_, 1);
    AURORA_WARN << "instance " << self_ << " fenced by segment "
                << ack.segment << ": " << ack.status.ToString();
    if (on_fenced_) on_fenced_();
    return;
  }
  if (!ack.status.ok()) return;
  // A successful ack carries the segment's hydration flag — the only
  // authoritative signal the driver has about mid-hydration replacements
  // (see ReadBlock's eligibility filter) — and doubles as in-band
  // liveness evidence for the health monitor.
  channel->hydration = ack.hydrated ? ChannelHydration::kHydrated
                                    : ChannelHydration::kHydrating;
  if (ack_observer_) ack_observer_(ack.segment, true);
  write_ack_latency_.Record(sim_->Now() - sent_at);
  AURORA_OBSERVE(m_write_ack_us_, sim_->Now() - sent_at);
  tracker_.ObserveScl(channel->pg, ack.segment, ack.scl);
  if (options_.ack_coalesce_window > 0) {
    // Per-ack bookkeeping is done; defer the volume-wide pass so a burst
    // of fan-out acks (one per segment per batch) pays for one advance.
    if (!advance_pending_) {
      advance_pending_ = true;
      sim_->Schedule(
          options_.ack_coalesce_window,
          [this]() {
            advance_pending_ = false;
            if (running_) AdvancePass();
          },
          "driver.ack_flush");
    }
    return;
  }
  AdvancePass();
}

void StorageDriver::AdvancePass() {
  stats_.advance_passes++;
  const Lsn vcl_before = tracker_.vcl();
  const Lsn vdl_before = tracker_.vdl();
  if (tracker_.Advance()) {
    if (AURORA_METRICS_ON()) {
      const SimTime now = sim_->Now();
      if (tracker_.vcl() > vcl_before) {
        if (last_vcl_advance_at_ > 0) {
          m_vcl_advance_gap_us_->Record(now - last_vcl_advance_at_);
        }
        last_vcl_advance_at_ = now;
      }
      if (tracker_.vdl() > vdl_before) {
        if (last_vdl_advance_at_ > 0) {
          m_vdl_advance_gap_us_->Record(now - last_vdl_advance_at_);
        }
        last_vdl_advance_at_ = now;
      }
    }
    // Durability advanced: drop retained records now known globally
    // durable and wake the commit path.
    while (!retained_.empty() && retained_.front().lsn <= tracker_.vcl()) {
      auto pg_it = retained_by_pg_.find(retained_.front().pg);
      if (pg_it != retained_by_pg_.end() && --pg_it->second == 0) {
        retained_by_pg_.erase(pg_it);
      }
      retained_.pop_front();
    }
    AURORA_GAUGE_SET(m_retained_depth_, retained_.size());
    // Quorum progress is the degraded-mode exit signal; re-evaluating
    // here (not just in the periodic sweep) makes recovery immediate
    // once the first post-outage ack lands.
    UpdateDegraded();
    if (on_advance_) on_advance_();
  }
}

void StorageDriver::Start() {
  if (running_) return;
  running_ = true;
  sim_->Schedule(options_.retry_interval, [this]() { RetrySweep(); });
}

void StorageDriver::Stop() { running_ = false; }

void StorageDriver::RetrySweep() {
  if (!running_) return;
  for (auto& [segment_id, channel] : channels_) {
    const Lsn known_scl = tracker_.SclOf(channel.pg, segment_id);
    if (channel.max_sent == kInvalidLsn || known_scl >= channel.max_sent) {
      continue;
    }
    // Resend retained records for this PG above the segment's known SCL
    // (§2.3: missing writes are tolerated; gossip or this sweep fills
    // them).
    std::vector<log::RedoRecord> resend;
    auto it = std::lower_bound(
        retained_.begin(), retained_.end(), known_scl + 1,
        [](const log::RedoRecord& r, Lsn value) { return r.lsn < value; });
    for (; it != retained_.end() && resend.size() < options_.retry_batch;
         ++it) {
      if (it->pg == channel.pg) resend.push_back(*it);
    }
    if (resend.empty()) continue;
    stats_.retransmissions += resend.size();
    AURORA_COUNT(m_retransmitted_, resend.size());
    SendBatch(&channel, std::move(resend));
  }
  UpdateDegraded();
  sim_->Schedule(options_.retry_interval, [this]() { RetrySweep(); });
}

// ---------------------------------------------------------------------------
// Degraded mode (write-quorum loss; DESIGN.md §7)
// ---------------------------------------------------------------------------

void StorageDriver::UpdateDegraded() {
  const SimTime now = sim_->Now();
  for (const auto& [pg_id, tracking] : tracker_.pgs()) {
    const Lsn oldest = tracking.outstanding.empty()
                           ? kInvalidLsn
                           : tracking.outstanding.front();
    QuorumWatch& watch = quorum_watch_[pg_id];
    if (oldest == kInvalidLsn) {
      // Nothing outstanding: the quorum is keeping up (or idle).
      watch = QuorumWatch{};
      ClearDegraded(pg_id, now);
      continue;
    }
    if (watch.oldest != oldest || watch.since == 0) {
      // The oldest outstanding record changed since the last sweep —
      // PGCL is advancing, so the write quorum is alive.
      watch.oldest = oldest;
      watch.since = now;
      ClearDegraded(pg_id, now);
      continue;
    }
    if (now - watch.since >= options_.degraded_after &&
        !degraded_since_.contains(pg_id)) {
      degraded_since_.emplace(pg_id, now);
      stats_.degraded_entries++;
      AURORA_COUNT(m_degraded_entered_, 1);
      AURORA_WARN << "instance " << self_ << ": pg " << pg_id
                  << " degraded (oldest outstanding lsn " << oldest
                  << " stalled " << (now - watch.since) << "us)";
    }
  }
  AURORA_GAUGE_SET(m_degraded_pgs_, degraded_since_.size());
  AURORA_GAUGE_SET(m_parked_records_, ParkedRecords());
}

size_t StorageDriver::ParkedRecords() const {
  size_t parked = 0;
  for (const auto& [pg, since] : degraded_since_) {
    auto it = retained_by_pg_.find(pg);
    if (it != retained_by_pg_.end()) parked += it->second;
  }
  return parked;
}

void StorageDriver::ClearDegraded(ProtectionGroupId pg, SimTime now) {
  auto it = degraded_since_.find(pg);
  if (it == degraded_since_.end()) return;
  AURORA_OBSERVE(m_degraded_stall_us_, now - it->second);
  AURORA_INFO << "instance " << self_ << ": pg " << pg
              << " recovered write quorum after " << (now - it->second)
              << "us";
  degraded_since_.erase(it);
}

bool StorageDriver::AcceptingWrites() const {
  // Commits and already-submitted records keep draining through the
  // normal quorum machinery; only NEW writes are refused, and only once
  // some degraded PG's parked backlog would otherwise grow without
  // bound. The budget is per degraded PG — in-flight records of healthy
  // PGs never count — but the refusal is instance-wide, because a new
  // write's target PG is unknown at admission time (it resolves through
  // the B-tree only later).
  for (const auto& [pg, since] : degraded_since_) {
    auto it = retained_by_pg_.find(pg);
    if (it != retained_by_pg_.end() &&
        it->second >= options_.max_parked_records) {
      return false;
    }
  }
  return true;
}

bool StorageDriver::SegmentKnownHydrated(SegmentId segment) const {
  auto it = channels_.find(segment);
  return it != channels_.end() &&
         it->second.hydration == ChannelHydration::kHydrated;
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

namespace {
struct ReadStateImpl {
  BlockId block;
  Lsn read_lsn;
  Lsn pgmrpl;
  ProtectionGroupId pg;
  std::vector<SegmentId> candidates;  // ranked
  size_t next_candidate = 0;
  bool done = false;
  size_t outstanding = 0;
  StorageDriver::ReadCallback cb;
};
}  // namespace

struct ReadState : ReadStateImpl {};

void StorageDriver::ReadBlock(BlockId block, Lsn read_lsn, Lsn pgmrpl,
                              ReadCallback cb) {  // NOLINT
  auto pg = geometry_.PgForBlock(block);
  if (!pg.ok()) {
    cb(pg.status());
    return;
  }
  // Clamp the read point to this group's completion point: an LSN in the
  // global space may exceed the group's own chain position (SCL), and a
  // storage node only accepts reads at or below its SCL. No version is
  // lost: every record of this group at or below VCL is at or below its
  // PGCL.
  const Lsn group_point = tracker_.pgcl(*pg);
  if (group_point != kInvalidLsn && group_point < read_lsn) {
    read_lsn = group_point;
  }
  // The piggybacked minimum read point is a GLOBAL LSN; never advertise
  // one above the (group-clamped) read point or the node would reject the
  // read as below PGMRPL. A lower report is always safe — it only delays
  // version GC.
  if (pgmrpl != kInvalidLsn) pgmrpl = std::min(pgmrpl, read_lsn);
  const auto& config = geometry_.Pg(*pg);
  // Eligible: full segments whose last observed SCL covers the read point
  // (the §3.1 bookkeeping: we know who has the last durable version).
  std::vector<SegmentId> eligible;
  std::vector<SegmentId> fallback;
  for (const auto& member : config.AllMembers()) {
    if (!member.is_full) continue;
    // A segment the ack stream reported mid-hydration has holes below its
    // hydration target: it must not count toward read-quorum completeness
    // at all — not even as a fallback (the node also rejects such reads
    // server-side; this filter just avoids burning a hedge on it).
    auto ch = channels_.find(member.id);
    if (ch != channels_.end() &&
        ch->second.hydration == ChannelHydration::kHydrating) {
      continue;
    }
    fallback.push_back(member.id);
    if (tracker_.SclOf(*pg, member.id) >= read_lsn) {
      eligible.push_back(member.id);
    }
  }
  if (eligible.empty()) eligible = std::move(fallback);
  if (eligible.empty()) {
    cb(Status::Unavailable("no full segments for block"));
    return;
  }
  auto state = std::make_shared<ReadState>();
  state->block = block;
  state->read_lsn = read_lsn;
  state->pgmrpl = pgmrpl;
  state->pg = *pg;
  state->candidates = router_.Rank(std::move(eligible), rng_);
  state->cb = std::move(cb);
  sim_->Schedule(options_.read_deadline, [this, state]() {
    if (state->done) return;
    state->done = true;
    stats_.read_failures++;
    AURORA_COUNT(m_read_failures_, 1);
    state->cb(Status::TimedOut("read deadline exceeded"));
  });
  IssueRead(state, 0);
}

void StorageDriver::IssueRead(std::shared_ptr<ReadState> state,
                              size_t rank_index) {
  if (state->done || rank_index >= state->candidates.size()) {
    if (!state->done && state->outstanding == 0) {
      state->done = true;
      stats_.read_failures++;
      AURORA_COUNT(m_read_failures_, 1);
      state->cb(Status::Unavailable("all read candidates exhausted"));
    }
    return;
  }
  const SegmentId segment = state->candidates[rank_index];
  const quorum::SegmentInfo* info =
      geometry_.Pg(state->pg).FindSegment(segment);
  if (info == nullptr) {
    IssueRead(state, rank_index + 1);
    return;
  }
  storage::ReadPageRequest request;
  request.segment = segment;
  request.epochs =
      EpochVector{volume_epoch_, geometry_.Pg(state->pg).epoch()};
  request.block = state->block;
  request.read_lsn = state->read_lsn;
  request.pgmrpl = state->pgmrpl;
  stats_.reads_issued++;
  AURORA_COUNT(m_reads_issued_, 1);
  state->outstanding++;
  const SimTime sent_at = sim_->Now();
  const NodeId target = info->node;
  sim::UnaryCall<storage::ReadPageResponse>(
      network_, self_, target, request.SerializedSize(),
      [this, target, request](sim::ReplyFn<storage::ReadPageResponse> reply) {
        storage::StorageNode* node = resolver_ ? resolver_(target) : nullptr;
        if (node == nullptr) {
          reply(storage::ReadPageResponse{
              Status::Unavailable("unresolved node"), {}});
          return;
        }
        node->HandleReadPage(request, std::move(reply));
      },
      [](const storage::ReadPageResponse& r) { return r.SerializedSize(); },
      [this, state, segment, sent_at](storage::ReadPageResponse response) {
        state->outstanding--;
        if (!running_) return;
        const SimDuration elapsed = sim_->Now() - sent_at;
        if (response.status.ok()) {
          router_.ObserveLatency(segment, elapsed);
          if (!state->done) {
            state->done = true;
            read_latency_.Record(elapsed);
            AURORA_OBSERVE(m_read_us_, elapsed);
            state->cb(std::move(*response.page));
          }
          return;
        }
        if (response.status.IsStaleEpoch() || response.status.IsFenced()) {
          if (on_fenced_) on_fenced_();
          return;
        }
        router_.Penalize(segment);
        // Try the next candidate immediately on explicit failure.
        IssueRead(state, state->next_candidate);
      });
  // Hedge: if the response is slow, launch the next candidate in parallel
  // and take whichever returns first (§3.1 tail-latency cap).
  const SimDuration hedge_delay = router_.HedgeDelay(segment);
  const size_t hedge_index = rank_index + 1;
  sim_->Schedule(hedge_delay, [this, state, hedge_index]() {
    if (state->done || !running_) return;
    if (hedge_index >= state->candidates.size()) return;
    if (hedge_index < state->next_candidate) return;  // already issued
    router_.CountHedge();
    IssueRead(state, hedge_index);
    state->next_candidate = std::max(state->next_candidate, hedge_index + 1);
  });
  state->next_candidate = std::max(state->next_candidate, rank_index + 1);
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

void StorageDriver::ProbeSegmentState(
    const quorum::SegmentInfo& segment,
    std::function<void(storage::SegmentStateResponse)> cb) {
  storage::SegmentStateRequest request{segment.id};
  const NodeId target = segment.node;
  sim::UnaryCall<storage::SegmentStateResponse>(
      network_, self_, target, request.SerializedSize(),
      [this, target,
       request](sim::ReplyFn<storage::SegmentStateResponse> reply) {
        storage::StorageNode* node = resolver_ ? resolver_(target) : nullptr;
        if (node == nullptr) {
          storage::SegmentStateResponse response;
          response.status = Status::Unavailable("unresolved node");
          reply(std::move(response));
          return;
        }
        node->HandleSegmentState(request, std::move(reply));
      },
      [](const storage::SegmentStateResponse& r) {
        return r.SerializedSize();
      },
      std::move(cb));
}

void StorageDriver::FetchTailRecords(
    const quorum::SegmentInfo& segment, Lsn from_lsn,
    std::function<void(storage::TailRecordsResponse)> cb) {
  storage::TailRecordsRequest request{segment.id, from_lsn};
  const NodeId target = segment.node;
  sim::UnaryCall<storage::TailRecordsResponse>(
      network_, self_, target, request.SerializedSize(),
      [this, target,
       request](sim::ReplyFn<storage::TailRecordsResponse> reply) {
        storage::StorageNode* node = resolver_ ? resolver_(target) : nullptr;
        if (node == nullptr) {
          reply(storage::TailRecordsResponse{
              Status::Unavailable("unresolved node"), {}});
          return;
        }
        node->HandleTailRecords(request, std::move(reply));
      },
      [](const storage::TailRecordsResponse& r) {
        return r.SerializedSize();
      },
      std::move(cb));
}

void StorageDriver::SendVolumeEpochUpdate(
    const quorum::SegmentInfo& segment,
    const storage::VolumeEpochUpdateRequest& request,
    std::function<void(storage::VolumeEpochUpdateResponse)> cb) {
  const NodeId target = segment.node;
  sim::UnaryCall<storage::VolumeEpochUpdateResponse>(
      network_, self_, target, request.SerializedSize(),
      [this, target,
       request](sim::ReplyFn<storage::VolumeEpochUpdateResponse> reply) {
        storage::StorageNode* node = resolver_ ? resolver_(target) : nullptr;
        if (node == nullptr) {
          reply(storage::VolumeEpochUpdateResponse{
              Status::Unavailable("unresolved node"), 0, kInvalidLsn});
          return;
        }
        node->HandleVolumeEpochUpdate(request, std::move(reply));
      },
      [](const storage::VolumeEpochUpdateResponse& r) {
        return r.SerializedSize();
      },
      std::move(cb));
}

}  // namespace aurora::engine
