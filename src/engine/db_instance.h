// The writer database instance.
//
// "Each database instance acts as a SQL endpoint and includes most of the
// components of a traditional database kernel (query processing, access
// methods, transactions, locking, buffer caching, and undo management)"
// (§2.1). Here the "SQL endpoint" is a transactional key/value API over
// the B+-tree; everything below it — MTR generation, asynchronous quorum
// writes, consistency points, commit queue, MVCC with undo, crash
// recovery with truncation and volume-epoch fencing — follows the paper.
//
// All state in this class is ephemeral ("local transient state", §2.4):
// a crash clears it, and Open() re-establishes consistency from a read
// quorum of segment SCLs.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/engine/btree.h"
#include "src/engine/buffer_cache.h"
#include "src/engine/storage_driver.h"
#include "src/log/record.h"
#include "src/quorum/geometry.h"
#include "src/sim/network.h"
#include "src/storage/storage_node.h"
#include "src/txn/commit_queue.h"
#include "src/txn/lock_table.h"
#include "src/txn/read_view.h"
#include "src/txn/row_version.h"
#include "src/txn/txn_manager.h"

namespace aurora::engine {

/// New LSNs after crash recovery are allocated above the truncation range
/// (§2.4); this is the width of the annulled gap.
inline constexpr Lsn kTruncationGap = 1ULL << 30;

/// Events shipped on the physical replication stream (§3.3): redo in MTR
/// chunks, VDL update control records, and commit notifications.
struct ReplicationEvent {
  enum class Type { kMtr, kVdlUpdate, kCommit };
  Type type = Type::kMtr;
  std::vector<log::RedoRecord> mtr;
  Lsn vdl = kInvalidLsn;
  TxnId txn = kInvalidTxn;
  Scn scn = kInvalidLsn;
  /// Writer-side ship time; used by replicas to measure stream lag.
  /// Excluded from SerializedSize: it is simulation bookkeeping, not
  /// payload, and must not perturb modeled bandwidth delays.
  SimTime shipped_at = 0;
  /// Stream continuity header: the shipping writer and a per-(writer,
  /// replica) sequence number starting at 1. A replica that sees a
  /// non-successor seq (or a new source) knows events were lost on the
  /// wire — its cached pages may be silently stale until each block's
  /// next record exposes the chain mismatch. Excluded from
  /// SerializedSize like shipped_at: a real stream carries this in the
  /// frame header whose cost is already part of the per-event overhead.
  NodeId source = kInvalidNode;
  uint64_t seq = 0;

  uint64_t SerializedSize() const;
};

/// Control-plane hooks into the cluster's metadata service (volume epoch
/// authority, geometry registry). Kept as callbacks so the engine does not
/// depend on the cluster assembly.
struct ControlPlane {
  /// Atomically increments and returns the volume epoch (crash recovery).
  std::function<void(std::function<void(VolumeEpoch)>)> increment_volume_epoch;
  /// Fetches the current geometry + volume epoch.
  std::function<void(
      std::function<void(quorum::VolumeGeometry, VolumeEpoch)>)>
      fetch_geometry;
};

struct DbOptions {
  /// Buffer-cache capacity in pages. Must exceed one operation's working
  /// set (tree depth + undo page + status-index leaf + meta, ~8 pages);
  /// below that, fetch/evict livelock is possible — as in any real engine
  /// whose buffer pool cannot hold a single operation's fix set.
  size_t cache_pages = 8192;
  BTreeOptions btree;
  DriverOptions driver;
  /// Undo page split threshold.
  size_t undo_entries_per_page = 64;
  /// Retry backoff for recovery probe rounds.
  SimDuration recovery_retry = 50 * kMillisecond;
  /// Max key-path retries before an operation reports Aborted.
  int max_op_retries = 16;
  /// Opt-in (§3.4): drop commit-history entries below PGMRPL whenever
  /// durability advances. Long-running replica read views hold PGMRPL
  /// back, so this makes their GC pressure observable on the writer too
  /// (mirroring version GC at the segments). Off by default: purging
  /// changes which commits resolve from memory vs the status index, so
  /// enabling it perturbs read schedules.
  bool purge_commit_history = false;
};

struct DbStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t commits_acked = 0;
  uint64_t txn_aborts = 0;
  uint64_t undo_chain_walks = 0;
  uint64_t crash_recoveries = 0;
  uint64_t leftover_rollbacks = 0;
};

class DbInstance : public sim::NodeLifecycleListener {
 public:
  DbInstance(sim::Simulator* sim, sim::Network* network, NodeId id, AzId az,
             storage::NodeResolver resolver, ControlPlane control_plane,
             DbOptions options = {});

  NodeId id() const { return id_; }
  bool IsOpen() const { return open_; }
  bool IsFenced() const { return fenced_; }

  // -- Lifecycle ----------------------------------------------------------

  /// Initializes a fresh volume (writes the bootstrap MTR) and opens.
  void Bootstrap(std::function<void(Status)> cb);

  /// Opens the volume with crash recovery (§2.4): probes read quorums,
  /// recomputes VCL/VDL from SCLs, installs a truncation range and a new
  /// volume epoch, then accepts work.
  void Open(std::function<void(Status)> cb);

  /// Simulated process crash: all ephemeral state vanishes.
  void OnCrash() override;
  void OnRestart() override {}

  // -- Transactions -------------------------------------------------------

  TxnId Begin();

  void Put(TxnId txn, const std::string& key, const std::string& value,
           std::function<void(Status)> cb);
  void Delete(TxnId txn, const std::string& key,
              std::function<void(Status)> cb);

  /// Snapshot read. `txn` may be kInvalidTxn for an autocommit read
  /// (statement-level view). Delivers NotFound if the key is absent or
  /// deleted in the snapshot.
  void Get(TxnId txn, const std::string& key,
           std::function<void(Result<std::string>)> cb);

  /// Snapshot range scan over [lo, hi], up to `limit` visible rows.
  void Scan(TxnId txn, const std::string& lo, const std::string& hi,
            size_t limit,
            std::function<void(
                Result<std::vector<std::pair<std::string, std::string>>>)>
                cb);

  /// Writes the commit record and acknowledges once SCN <= VCL (§2.3).
  void Commit(TxnId txn, std::function<void(Status)> cb);

  /// Rolls back via the undo chain, then releases locks.
  void Rollback(TxnId txn, std::function<void(Status)> cb);

  // -- Replication (writer side, §3.3) ------------------------------------

  /// Registers a replica sink; events are shipped over the network.
  void AddReplicationSink(NodeId replica,
                          std::function<void(ReplicationEvent)> deliver);
  void RemoveReplicationSink(NodeId replica);

  /// Replicas report their minimum read points; PGMRPL is the fleet-wide
  /// minimum (§3.4).
  void ObserveReplicaReadPoint(NodeId replica, Lsn read_point);

  // -- Introspection ------------------------------------------------------

  Lsn vcl() const { return driver_ ? driver_->tracker().vcl() : kInvalidLsn; }
  Lsn vdl() const { return driver_ ? driver_->tracker().vdl() : kInvalidLsn; }
  Lsn pgcl(ProtectionGroupId pg) const {
    return driver_ ? driver_->tracker().pgcl(pg) : kInvalidLsn;
  }
  Lsn ComputePgmrpl() const;
  Lsn next_lsn() const { return next_lsn_; }
  VolumeEpoch volume_epoch() const {
    return driver_ ? driver_->volume_epoch() : 0;
  }

  /// Highest SCN this instance has ever acknowledged to a client.
  /// Deliberately survives OnCrash(): the paper's zero-data-loss claim is
  /// exactly that recovery never loses an acked commit, so the invariant
  /// auditor checks max_acked_scn() <= VDL across writer incarnations.
  Scn max_acked_scn() const { return max_acked_scn_; }

  /// Liveness observer forwarded to the storage driver (and re-applied
  /// whenever recovery rebuilds the driver): fires (segment, ok=true) for
  /// every successful write ack. Installed by the health monitor.
  void SetAckObserver(std::function<void(SegmentId, bool)> cb) {
    ack_observer_ = std::move(cb);
    if (driver_) driver_->SetAckObserver(ack_observer_);
  }

  StorageDriver* driver() { return driver_.get(); }
  BufferCache& cache() { return *cache_; }
  txn::TxnManager& txns() { return txns_; }
  txn::LockTable& locks() { return locks_; }
  BTree* btree() { return btree_.get(); }
  const DbStats& stats() const { return stats_; }
  Histogram& commit_latency() { return commit_latency_; }
  size_t CommitQueueDepth() const { return commit_queue_.Size(); }
  Scn MinPendingCommitScn() const { return commit_queue_.MinPendingScn(); }

  /// Direct MTR append — used by scripted benches (Figure 3) and the
  /// bootstrap path. Records are built, applied to cache, and submitted.
  Lsn AppendMtr(const std::vector<StagedOp>& ops, TxnId txn,
                log::RecordType type = log::RecordType::kData);

 private:
  struct RecoveryState;

  void InitComponents(const quorum::VolumeGeometry& geometry,
                      VolumeEpoch epoch);
  void RetireDriver();

  // Page access.
  void WithPage(BlockId block,
                std::function<void(Result<storage::Page*>)> cb);
  storage::Page* CachedPage(BlockId block);

  // Write-path helpers.
  void PutInternal(TxnId txn, std::string key, std::string value,
                   bool deleted, std::function<void(Status)> cb, int retries);
  void ApplyWrite(txn::Transaction* txn, const std::string& key,
                  const std::string& value, bool deleted,
                  const std::vector<BlockId>& path,
                  std::optional<txn::RowVersion> existing,
                  std::function<void(Status)> cb);
  BlockId AllocateBlock(std::vector<StagedOp>* ops);
  Result<std::pair<BlockId, std::string>> StageUndo(
      txn::Transaction* txn, const std::string& key,
      const std::optional<txn::RowVersion>& existing,
      std::vector<StagedOp>* ops);

  // Read-path helpers.
  void ResolveCommitScn(TxnId writer,
                        std::function<void(std::optional<Scn>)> cb);
  void ResolveCommitScnFromIndex(TxnId writer,
                                 std::function<void(std::optional<Scn>)> cb,
                                 int retries);
  void ResolveVisible(txn::RowVersion version, txn::ReadView view,
                      std::function<void(Result<std::string>)> cb,
                      int depth);
  void ScanResolve(
      std::vector<std::pair<std::string, std::string>> raw, size_t index,
      txn::ReadView view,
      std::vector<std::pair<std::string, std::string>> acc,
      std::function<void(
          Result<std::vector<std::pair<std::string, std::string>>>)>
          cb);

  // Crashed-writer cleanup: rolls back a leftover uncommitted version
  // found on `key` (undo "in parallel with user activity", §2.4).
  void RollbackLeftover(const std::string& key, txn::RowVersion version,
                        std::function<void(Status)> cb);
  void RollbackChain(TxnId txn, txn::UndoPtr ptr,
                     std::function<void(Status)> cb, int depth);

  // Commit-path helpers.
  void FinishCommit(TxnId txn, std::function<void(Status)> cb, int retries);
  void OnDurabilityAdvance();
  void ShipReplicationEvent(const ReplicationEvent& event);

  // Recovery.
  void StartRecovery(std::shared_ptr<RecoveryState> state);
  void ProbeRound(std::shared_ptr<RecoveryState> state);
  void ComputeRecoveryPoints(std::shared_ptr<RecoveryState> state);
  void InstallRecovery(std::shared_ptr<RecoveryState> state);
  txn::ReadView ViewFor(TxnId txn);
  void FinishStatementView(TxnId txn, const txn::ReadView& view);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  AzId az_;
  storage::NodeResolver resolver_;
  ControlPlane control_plane_;
  DbOptions options_;

  bool open_ = false;
  bool fenced_ = false;

  std::unique_ptr<StorageDriver> driver_;
  /// Stopped drivers from previous incarnations; kept alive because
  /// in-flight simulator events still reference them.
  std::vector<std::unique_ptr<StorageDriver>> retired_drivers_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<BTree> btree_;
  txn::TxnManager txns_;
  txn::LockTable locks_;
  txn::CommitQueue commit_queue_;

  // LSN allocation (the writer is the sole allocator, §2.1).
  Lsn next_lsn_ = 1;
  Lsn last_volume_lsn_ = kInvalidLsn;
  std::map<ProtectionGroupId, Lsn> last_pg_lsn_;

  // Undo allocation state.
  BlockId current_undo_block_ = kInvalidBlock;
  size_t undo_entries_in_block_ = 0;

  // Per-transaction read views (snapshot isolation).
  std::map<TxnId, txn::ReadView> txn_views_;

  // In-flight page fetches (dedup).
  std::map<BlockId, std::vector<std::function<void(Result<storage::Page*>)>>>
      pending_fetches_;

  // Replication.
  std::map<NodeId, std::function<void(ReplicationEvent)>> replica_sinks_;
  std::map<NodeId, Lsn> replica_read_points_;
  /// Per-replica stream sequence numbers (continuity header). Reset when
  /// a sink is (re-)added: a rewire means the old stream may have dropped
  /// events, and the seq discontinuity is how the replica learns that.
  std::map<NodeId, uint64_t> replica_stream_seq_;
  Lsn last_shipped_vdl_ = kInvalidLsn;

  uint64_t recovery_generation_ = 0;
  DbStats stats_;
  Histogram commit_latency_;
  Scn max_acked_scn_ = kInvalidLsn;

  // Survives recovery so the rebuilt driver keeps reporting liveness.
  std::function<void(SegmentId, bool)> ack_observer_;

  // Metrics handles (see DESIGN.md §5).
  metrics::Counter* m_commits_acked_;
  metrics::Counter* m_replication_events_;
  metrics::Gauge* m_commit_queue_depth_;
  Histogram* m_commit_wait_us_;
  metrics::Counter* m_degraded_rejected_;
};

}  // namespace aurora::engine
