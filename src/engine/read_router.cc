#include "src/engine/read_router.h"

#include <algorithm>

namespace aurora::engine {

void ReadRouter::CountHedge() {
  hedged_reads_++;
  if (AURORA_METRICS_ON()) {
    metrics::Registry::Global().GetCounter("read.hedges")->Add(1);
  }
}

void ReadRouter::ObserveLatency(SegmentId segment, SimDuration latency) {
  if (AURORA_METRICS_ON()) {
    auto [slot, inserted] = segment_latency_.try_emplace(segment, nullptr);
    if (inserted) {
      slot->second = metrics::Registry::Global().GetHistogram(
          "read.segment_us." + std::to_string(segment));
    }
    slot->second->Record(latency);
  }
  auto it = ewma_.find(segment);
  if (it == ewma_.end()) {
    ewma_[segment] = static_cast<double>(latency);
    return;
  }
  it->second = options_.ewma_alpha * static_cast<double>(latency) +
               (1.0 - options_.ewma_alpha) * it->second;
}

void ReadRouter::Penalize(SegmentId segment) {
  auto it = ewma_.find(segment);
  const double base = it == ewma_.end()
                          ? static_cast<double>(options_.default_latency)
                          : it->second;
  ewma_[segment] = base * 4.0;
}

SimDuration ReadRouter::ExpectedLatency(SegmentId segment) const {
  auto it = ewma_.find(segment);
  if (it == ewma_.end()) return options_.default_latency;
  return static_cast<SimDuration>(it->second);
}

std::vector<SegmentId> ReadRouter::Rank(std::vector<SegmentId> eligible,
                                        Rng& rng) const {
  std::sort(eligible.begin(), eligible.end(),
            [this](SegmentId a, SegmentId b) {
              const SimDuration la = ExpectedLatency(a);
              const SimDuration lb = ExpectedLatency(b);
              if (la != lb) return la < lb;
              return a < b;
            });
  if (eligible.size() > 1 && rng.Bernoulli(options_.explore_probability)) {
    std::swap(eligible[0], eligible[1]);
  }
  return eligible;
}

SimDuration ReadRouter::HedgeDelay(SegmentId segment) const {
  const auto expected = static_cast<double>(ExpectedLatency(segment));
  return std::clamp(
      static_cast<SimDuration>(expected * options_.hedge_multiplier),
      options_.min_hedge_delay, options_.max_hedge_delay);
}

}  // namespace aurora::engine
