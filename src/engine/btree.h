// Page-structured B+-tree access method.
//
// This is the substrate that makes mini-transactions meaningful: an insert
// that splits pages touches several blocks (leaf, new sibling, parent,
// meta) and all of those changes ride in ONE MTR — "each MTR is composed
// of changes to one or more data blocks, represented as a batch of
// sequenced redo log records to provide consistency of structural changes,
// such as those involving B-Tree splits" (§3.2).
//
// The tree is asynchronous over a page fetcher (cache-or-storage): descents
// fault pages in, then plans are built synchronously against cached pages
// and emitted as (block, PageOp) lists for the engine to wrap in an MTR.
// Deletes are MVCC tombstones at the row level, so pages never shrink
// except under purge; no page merging is implemented (lazy deletion, as in
// many production engines).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/page.h"

namespace aurora::engine {

/// Well-known blocks. Block 0 is the volume meta page (tree root pointer,
/// allocation cursor); everything else is allocated through the meta
/// cursor.
inline constexpr BlockId kMetaBlock = 0;
inline constexpr BlockId kFirstAllocatableBlock = 1;

/// Meta-page entry keys. Block allocation keeps one cursor per protection
/// group ("alloc_pg_<n>" -> next within-group offset) so data stripes
/// across the volume's PGs; volume growth simply adds a cursor.
inline constexpr const char* kMetaRootKey = "root";
inline constexpr const char* kMetaAllocPrefix = "alloc_pg_";

inline std::string AllocCursorKey(ProtectionGroupId pg) {
  return kMetaAllocPrefix + std::to_string(pg);
}

/// Key namespaces inside the single B+-tree. User rows live under "d";
/// the persistent transaction-status index (txn id -> commit SCN, §2.3's
/// commit records made durable and readable by replicas and recovery)
/// lives under "t". Keeping status entries in the tree bounds every page
/// (splits), unlike a fixed status page that would grow with txn count.
inline constexpr char kDataKeyPrefix = 'd';
inline constexpr char kStatusKeyPrefix = 't';

inline std::string DataKey(const std::string& user_key) {
  return std::string(1, kDataKeyPrefix) + user_key;
}
inline std::string StatusKey(TxnId txn) {
  return std::string(1, kStatusKeyPrefix) + std::to_string(txn);
}

std::string EncodeU64Value(uint64_t v);
Result<uint64_t> DecodeU64Value(const std::string& encoded);

/// One physical page change staged for an MTR.
struct StagedOp {
  BlockId block = kInvalidBlock;
  storage::PageOp op;
};

struct BTreeOptions {
  /// Split threshold: a page splits when an insert would exceed this.
  size_t max_entries = 64;
};

class BTree {
 public:
  /// Fault-in: delivers a pointer to the cached page (valid for the
  /// duration of the callback's synchronous execution).
  using PageFetcher =
      std::function<void(BlockId, std::function<void(Result<storage::Page*>)>)>;
  /// Synchronous cache lookup (nullptr on miss) used during plan building.
  using CacheLookup = std::function<storage::Page*(BlockId)>;
  /// Allocates a fresh block id and stages the allocation-cursor update.
  using BlockAllocator = std::function<BlockId(std::vector<StagedOp>*)>;

  BTree(BTreeOptions options, PageFetcher fetcher, CacheLookup cache)
      : options_(options),
        fetcher_(std::move(fetcher)),
        cache_(std::move(cache)) {}

  /// Ops that initialize an empty tree (meta + root leaf). The engine
  /// wraps them in the bootstrap MTR. `alloc_cursors[pg]` is the initial
  /// within-group allocation offset for each protection group.
  static std::vector<StagedOp> BootstrapOps(
      BlockId root_block, const std::vector<uint64_t>& alloc_cursors);

  /// Asynchronously resolves the root-to-leaf path for `key` (pages are
  /// faulted into cache along the way). The callback receives the path of
  /// block ids, root first, leaf last.
  void FindPath(const std::string& key,
                std::function<void(Result<std::vector<BlockId>>)> cb);

  /// Cache-only descent. Runs in one event, so the result cannot be
  /// invalidated by interleaved operations before it is used. Returns
  /// kAborted on any cache miss (caller faults in via FindPath and
  /// retries).
  Result<std::vector<BlockId>> FindPathSync(const std::string& key) const;

  /// Builds the staged ops for inserting/updating `key` -> `value` at the
  /// leaf of `path`, splitting pages as needed (all splits join the same
  /// MTR). Returns kAborted("retry") if a needed page fell out of cache or
  /// the path is stale (caller re-descends).
  Result<std::vector<StagedOp>> PlanInsert(const std::vector<BlockId>& path,
                                           const std::string& key,
                                           const std::string& value,
                                           const BlockAllocator& alloc);

  /// Reads the raw leaf entry for `key` via an async descent. Delivers
  /// NotFound if absent.
  void GetEntry(const std::string& key,
                std::function<void(Result<std::string>)> cb);

  /// Collects raw leaf entries in [lo, hi], following leaf sibling links,
  /// up to `limit`. Delivered as (key, raw value) pairs.
  void ScanEntries(
      const std::string& lo, const std::string& hi, size_t limit,
      std::function<void(Result<std::vector<std::pair<std::string, std::string>>>)>
          cb);

  uint64_t splits() const { return splits_; }

 private:
  void DescendFrom(BlockId block, std::string key,
                   std::vector<BlockId> path,
                   std::function<void(Result<std::vector<BlockId>>)> cb,
                   int depth_budget);
  void ScanStep(
      BlockId leaf, std::string lo, std::string hi, size_t limit,
      std::vector<std::pair<std::string, std::string>> acc,
      std::function<void(Result<std::vector<std::pair<std::string, std::string>>>)>
          cb);

  /// Routing: child block for `key` within internal page `page`.
  static Result<BlockId> ChildFor(const storage::Page& page,
                                  const std::string& key);

  BTreeOptions options_;
  PageFetcher fetcher_;
  CacheLookup cache_;
  uint64_t splits_ = 0;
};

}  // namespace aurora::engine
